//! Fail-over tests: warm-follower promotion interleaved with grants,
//! releases, expiries, lease rebalances, mid-rebalance crashes, and
//! journal compactions. Killing a leader at *any* point must leave the
//! promoted follower byte-identical to the dead leader, keep every shard
//! at promised ≤ lease, never mint lease units (Σ leases ≤ registered
//! total), and never let a double grant survive promotion.

use std::collections::HashMap;

use promises_cluster::{versioned_endpoint, ClusterDecision, PromiseCluster};
use promises_core::JournalOp;

const HOUR_MS: u64 = 3_600_000;

/// Two shards, leases and replication on: `alpha`→0, `beta`→1 by
/// round-robin ownership, `c0`/`c1` pinned to home shards 0/1, and a warm
/// follower attached to each leader.
fn replicated_cluster(qty: u64) -> PromiseCluster {
    let mut cluster = PromiseCluster::build(2, 7);
    let dir = cluster.enable_leases();
    dir.pin_home("c0", 0);
    dir.pin_home("c1", 1);
    assert_eq!(cluster.register_quantity_pool("alpha", qty), 0);
    assert_eq!(cluster.register_quantity_pool("beta", qty), 1);
    cluster.enable_replication();
    cluster
}

fn lease_sum(cluster: &PromiseCluster, pool: &str) -> u64 {
    cluster
        .nodes
        .iter()
        .map(|n| n.pm.lease_of(pool).unwrap_or(0))
        .sum()
}

/// Grant-like journal records per `(client, request)`, per shard —
/// counting checkpoint-folded live records exactly once (compaction drops
/// the raw lines a checkpoint summarizes). Any count above 1 is a double
/// grant.
fn double_grants(cluster: &PromiseCluster) -> usize {
    let mut doubles = 0;
    for node in &cluster.nodes {
        let mut counts: HashMap<(String, String), usize> = HashMap::new();
        for entry in node.journal.entries().expect("journal replays") {
            match entry.op {
                JournalOp::Grant(rec) | JournalOp::Prepared(rec) => {
                    *counts
                        .entry((rec.client.0.clone(), rec.request.0.clone()))
                        .or_insert(0) += 1;
                }
                JournalOp::Checkpoint(cp) => {
                    for item in cp.live {
                        *counts
                            .entry((item.record.client.0.clone(), item.record.request.0.clone()))
                            .or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
        doubles += counts.values().filter(|&&n| n > 1).count();
    }
    doubles
}

#[test]
fn promotion_swaps_in_a_byte_identical_replica_behind_a_new_epoch() {
    let mut cluster = replicated_cluster(100);
    let granted = cluster
        .coordinator
        .grant(
            "c0",
            "r1",
            &[
                "qty('alpha') >= 5".to_string(),
                "qty('beta') >= 3".to_string(),
            ],
            HOUR_MS,
        )
        .unwrap();
    assert!(granted.is_granted());

    let pre = cluster.nodes[0].pm.state_digest();
    cluster.kill_shard(0);
    let report = cluster.promote_follower(0);
    assert_eq!(report.shard, 0);
    assert_eq!(report.node_epoch, 1);
    assert_eq!(report.endpoint, versioned_endpoint(0, 1));
    assert_eq!(cluster.nodes[0].endpoint, report.endpoint);
    assert_eq!(
        cluster.nodes[0].pm.state_digest(),
        pre,
        "the promoted follower must be byte-identical to the dead leader"
    );

    // The promoted leader serves new traffic on the fenced endpoint, and
    // is itself protected by a fresh follower.
    let next = cluster
        .coordinator
        .grant("c0", "r2", &["qty('alpha') >= 2".to_string()], HOUR_MS)
        .unwrap();
    assert!(next.is_granted());
    assert!(cluster.nodes[0].follower.is_some());
    assert_eq!(double_grants(&cluster), 0);
}

#[test]
fn repeated_kills_keep_promoting_from_the_standby_chain() {
    let mut cluster = replicated_cluster(100);
    for round in 1..=3u64 {
        let rid = format!("r{round}");
        let granted = cluster
            .coordinator
            .grant("c1", &rid, &["qty('beta') >= 2".to_string()], HOUR_MS)
            .unwrap();
        assert!(granted.is_granted());
        let pre = cluster.nodes[1].pm.state_digest();
        cluster.kill_shard(1);
        let report = cluster.promote_follower(1);
        assert_eq!(report.node_epoch, round);
        assert_eq!(cluster.nodes[1].pm.state_digest(), pre);
    }
    assert_eq!(cluster.nodes[1].pm.live_count(), 3);
    assert_eq!(double_grants(&cluster), 0);
}

mod interleavings {
    //! The satellite proptest: leader kills + promotions interleaved with
    //! grants, releases, expiries, lease rebalances, mid-rebalance
    //! crashes, and compaction-triggering advances. Every step keeps
    //! promised ≤ lease on every shard and Σ leases ≤ registered total;
    //! every promotion yields a byte-identical replica; no double grant
    //! survives any interleaving.

    use super::*;
    use promises_cluster::GrantPart;
    use promises_core::Clock;
    use proptest::prelude::*;

    const POOLS: [&str; 2] = ["alpha", "beta"];
    const TOTAL: u64 = 60;

    #[derive(Debug, Clone)]
    enum Op {
        Grant {
            client: usize,
            pool: usize,
            amount: u64,
            span_both: bool,
        },
        Release {
            index: usize,
        },
        Advance {
            ms: u64,
        },
        KillPromote {
            shard: usize,
        },
        Rebalance,
        ArmRebalanceCrash,
    }

    fn arb_grant() -> impl Strategy<Value = Op> {
        (0usize..2, 0usize..2, 1u64..8, any::<bool>()).prop_map(
            |(client, pool, amount, span_both)| Op::Grant {
                client,
                pool,
                amount,
                span_both,
            },
        )
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // The shim's `prop_oneof!` is unweighted: repeat the grant arm so
        // the mix stays grant-heavy.
        prop_oneof![
            arb_grant(),
            arb_grant(),
            arb_grant(),
            (0usize..16).prop_map(|index| Op::Release { index }),
            (1u64..120_000).prop_map(|ms| Op::Advance { ms }),
            (0usize..2).prop_map(|shard| Op::KillPromote { shard }),
            Just(Op::Rebalance),
            Just(Op::ArmRebalanceCrash),
        ]
    }

    fn assert_lease_invariants(cluster: &PromiseCluster, step: usize) -> Result<(), TestCaseError> {
        for pool in POOLS {
            let sum = lease_sum(cluster, pool);
            prop_assert!(
                sum <= TOTAL,
                "step {step}: lease sum for {pool} minted units: {sum} > {TOTAL}"
            );
            for node in &cluster.nodes {
                let lease = node.pm.lease_of(pool).unwrap_or(0);
                let promised = node.pm.promised_qty(pool);
                prop_assert!(
                    promised <= lease,
                    "step {step}: shard {} oversold {pool}: {promised} > {lease}",
                    node.index
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn promotion_preserves_every_invariant_under_any_interleaving(
            ops in proptest::collection::vec(arb_op(), 1..20)
        ) {
            let mut cluster = replicated_cluster(TOTAL);
            let mut held: Vec<Vec<GrantPart>> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Grant { client, pool, amount, span_both } => {
                        let mut predicates =
                            vec![format!("qty('{}') >= {amount}", POOLS[*pool])];
                        if *span_both {
                            predicates
                                .push(format!("qty('{}') >= {amount}", POOLS[1 - *pool]));
                        }
                        let decision = cluster.coordinator.grant(
                            &format!("c{client}"),
                            &format!("g{i}"),
                            &predicates,
                            50_000,
                        ).unwrap();
                        if let ClusterDecision::Granted { parts } = decision {
                            held.push(parts);
                        }
                    }
                    Op::Release { index } => {
                        if !held.is_empty() {
                            let parts = held.swap_remove(index % held.len());
                            cluster.coordinator.release(&parts);
                        }
                    }
                    Op::Advance { ms } => {
                        // Drives expiry, compaction, and a rebalance cycle
                        // (which may fire a previously armed crash).
                        cluster.advance_and_prune(*ms);
                        held.retain(|parts| {
                            parts.iter().all(|p| p.expires_at > cluster.clock.now_ms())
                        });
                    }
                    Op::KillPromote { shard } => {
                        let pre = cluster.nodes[*shard].pm.state_digest();
                        cluster.kill_shard(*shard);
                        let report = cluster.promote_follower(*shard);
                        prop_assert_eq!(
                            cluster.nodes[*shard].pm.state_digest(),
                            pre,
                            "step {}: promoted follower diverged from dead leader {}",
                            i,
                            shard
                        );
                        prop_assert_eq!(
                            &cluster.nodes[*shard].endpoint,
                            &versioned_endpoint(*shard, report.node_epoch),
                            "step {}: promotion must fence the endpoint",
                            i
                        );
                    }
                    Op::Rebalance => {
                        cluster.rebalance_leases();
                    }
                    Op::ArmRebalanceCrash => cluster.arm_rebalance_crash(),
                }
                assert_lease_invariants(&cluster, i)?;
                prop_assert_eq!(
                    double_grants(&cluster), 0,
                    "step {}: a double grant appeared", i
                );
            }

            // Quiesce: two rebalance cycles consume any still-armed crash
            // and heal whatever a fired one stranded — the lease sum must
            // return to the registered total exactly.
            cluster.rebalance_leases();
            cluster.rebalance_leases();
            for pool in POOLS {
                prop_assert_eq!(
                    lease_sum(&cluster, pool),
                    TOTAL,
                    "healed cluster must account for every unit of {}",
                    pool
                );
            }
            prop_assert_eq!(double_grants(&cluster), 0);
        }
    }
}
