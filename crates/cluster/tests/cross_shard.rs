//! Cross-shard atomic-grant tests: the §4 unit guarantee under the
//! prepare/commit protocol, cluster-wide dedup, and coordinator crash
//! recovery.

use promises_cluster::{ClusterDecision, CoordError, CrashPoint, PromiseCluster};
use promises_core::{ClientId, PromiseId, RequestId};

const HOUR_MS: u64 = 3_600_000;

/// Two shards, one pool each (round-robin: `alpha`→0, `beta`→1).
fn two_shard_cluster(qty: u64) -> PromiseCluster {
    let cluster = PromiseCluster::build(2, 7);
    assert_eq!(cluster.register_quantity_pool("alpha", qty), 0);
    assert_eq!(cluster.register_quantity_pool("beta", qty), 1);
    cluster
}

fn span_both(a: u64, b: u64) -> Vec<String> {
    vec![
        format!("qty('alpha') >= {a}"),
        format!("qty('beta') >= {b}"),
    ]
}

#[test]
fn cross_shard_grant_commits_on_every_shard() {
    let cluster = two_shard_cluster(10);
    let decision = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap();
    let ClusterDecision::Granted { parts } = decision else {
        panic!("cross-shard grant should succeed: {decision:?}");
    };
    assert_eq!(parts.len(), 2);
    assert_eq!(parts[0].shard, 0);
    assert_eq!(parts[1].shard, 1);
    for part in &parts {
        let pm = &cluster.nodes[part.shard].pm;
        assert_eq!(pm.live_count(), 1);
        assert!(
            !pm.is_prepared(PromiseId(part.promise_id)),
            "committed hold must no longer be in doubt"
        );
    }
}

#[test]
fn rejection_is_a_unit_and_frees_every_hold() {
    let cluster = two_shard_cluster(10);
    // alpha can hold 6, beta cannot hold 20: the whole request rejects
    // and the alpha hold must be aborted, leaving its quantity grantable.
    let decision = cluster
        .coordinator
        .grant("alice", "r1", &span_both(6, 20), HOUR_MS)
        .unwrap();
    assert!(matches!(decision, ClusterDecision::Rejected { .. }));
    assert_eq!(cluster.live_count(), 0, "no partial grant may survive");
    // The freed alpha units are immediately grantable (non-blocking).
    let retry = cluster
        .coordinator
        .grant("bob", "r2", &["qty('alpha') >= 10".to_string()], HOUR_MS)
        .unwrap();
    assert!(retry.is_granted());
}

#[test]
fn single_shard_footprint_skips_the_coordination_round() {
    let cluster = two_shard_cluster(10);
    let decision = cluster
        .coordinator
        .grant("alice", "r1", &["qty('alpha') >= 4".to_string()], HOUR_MS)
        .unwrap();
    assert!(decision.is_granted());
    assert!(
        cluster.coordinator.log().entries().unwrap().is_empty(),
        "fast path must not log a transaction"
    );
    assert_eq!(cluster.nodes[0].pm.live_count(), 1);
    assert!(cluster.nodes[0].pm.prepared_ids().is_empty());
}

#[test]
fn dedup_is_cluster_wide_for_cross_shard_requests() {
    let cluster = two_shard_cluster(10);
    let first = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap();
    let second = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap();
    assert_eq!(first, second, "a retried request returns the same grant");
    assert_eq!(cluster.live_count(), 2, "no shard granted twice");
    // Journal-level proof: one grant-like record per shard.
    for node in &cluster.nodes {
        let facts = node.journal_facts();
        assert_eq!(facts.granted.len(), 1);
    }
}

#[test]
fn crash_after_prepare_recovers_by_presumed_abort() {
    let cluster = two_shard_cluster(10);
    cluster
        .coordinator
        .set_crash_point(Some(CrashPoint::AfterPrepare));
    let err = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap_err();
    assert!(matches!(err, CoordError::Crashed(_)));
    // The holds are in doubt on both shards, resources reserved.
    assert_eq!(cluster.live_count(), 2);
    assert_eq!(cluster.nodes[0].pm.prepared_ids().len(), 1);
    assert_eq!(cluster.nodes[1].pm.prepared_ids().len(), 1);

    let report = cluster.coordinator.recover().unwrap();
    assert_eq!(report.presumed_aborted, 1);
    assert_eq!(report.holds_freed, 2);
    assert_eq!(cluster.live_count(), 0, "presumed abort frees every hold");
}

#[test]
fn crash_after_commit_logged_recovers_by_resending_commits() {
    let cluster = two_shard_cluster(10);
    cluster
        .coordinator
        .set_crash_point(Some(CrashPoint::AfterCommitLogged));
    let err = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap_err();
    assert!(matches!(err, CoordError::Crashed(_)));
    // Commit is logged but no shard has heard: holds still in doubt.
    assert_eq!(cluster.nodes[0].pm.prepared_ids().len(), 1);

    let report = cluster.coordinator.recover().unwrap();
    assert_eq!(report.commits_resent, 1);
    assert_eq!(report.presumed_aborted, 0);
    assert_eq!(cluster.live_count(), 2, "commits land on both shards");
    for node in &cluster.nodes {
        assert!(node.pm.prepared_ids().is_empty(), "no hold left in doubt");
    }

    // The client's retry resolves to the same per-shard promises through
    // sub-request dedup, even though the coordinator's in-memory outcome
    // index died with it.
    let retry = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap();
    let ClusterDecision::Granted { parts } = retry else {
        panic!("retry after recovery must re-grant: {retry:?}");
    };
    assert_eq!(cluster.live_count(), 2, "retry must not double-grant");
    for part in &parts {
        let node = &cluster.nodes[part.shard];
        let held = node.pm.promise_for_request(
            &ClientId("alice".into()),
            &RequestId(format!("r1@s{}", part.shard)),
        );
        assert_eq!(held, Some(PromiseId(part.promise_id)));
    }
}

#[test]
fn recovery_is_idempotent() {
    let cluster = two_shard_cluster(10);
    cluster
        .coordinator
        .set_crash_point(Some(CrashPoint::AfterPrepare));
    let _ = cluster
        .coordinator
        .grant("alice", "r1", &span_both(2, 2), HOUR_MS)
        .unwrap_err();
    let first = cluster.coordinator.recover().unwrap();
    assert_eq!(first.presumed_aborted, 1);
    let second = cluster.coordinator.recover().unwrap();
    assert_eq!(second.presumed_aborted, 0, "decided txns stay decided");
    assert_eq!(second.commits_resent, 0);
    assert_eq!(cluster.live_count(), 0);
}

#[test]
fn acked_commits_compact_out_of_the_log() {
    let cluster = two_shard_cluster(10);
    let decision = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap();
    assert!(decision.is_granted());
    assert_eq!(
        cluster.coordinator.log().len(),
        2,
        "Begin + Commit are logged"
    );

    // Both shards acknowledged the commit resolutions inline, so the
    // transaction is fully resolved and compaction drops it entirely.
    let report = cluster.coordinator.compact_log().unwrap();
    assert_eq!(report.dropped_resolved, 1);
    assert_eq!(report.kept_txns, 0);
    assert!(cluster.coordinator.log().is_empty());

    // Recovery over the compacted log has nothing to do — and the grant
    // itself is untouched on the shards.
    let recovery = cluster.coordinator.recover().unwrap();
    assert_eq!(recovery.presumed_aborted + recovery.commits_resent, 0);
    assert_eq!(cluster.live_count(), 2);
}

#[test]
fn unacked_commit_survives_compaction_until_recovery_acks_it() {
    let cluster = two_shard_cluster(10);
    cluster
        .coordinator
        .set_crash_point(Some(CrashPoint::AfterCommitLogged));
    let _ = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap_err();

    // No resolution was ever sent, so no ack: compaction must keep the
    // committed transaction for recovery to resend.
    let report = cluster.coordinator.compact_log().unwrap();
    assert_eq!(report.dropped_resolved, 0);
    assert_eq!(report.kept_txns, 1);
    assert_eq!(cluster.coordinator.log().len(), 2);

    // Recovery resends, collects both shards' acks, and only then does
    // the transaction become compaction fodder.
    let recovery = cluster.coordinator.recover().unwrap();
    assert_eq!(recovery.commits_resent, 1);
    let report = cluster.coordinator.compact_log().unwrap();
    assert_eq!(report.dropped_resolved, 1);
    assert!(cluster.coordinator.log().is_empty());
    assert_eq!(cluster.live_count(), 2, "the grant itself is intact");
}

#[test]
fn orphan_abort_replay_is_surfaced_not_swallowed() {
    use promises_cluster::{CoordRecord, TxnId};
    let cluster = two_shard_cluster(10);
    // Dead history: an Abort whose Begin was compacted away (or a racing
    // recovery double-logged it).
    cluster.coordinator.log().append(CoordRecord::Abort {
        txn: TxnId::new("ghost", "rx"),
    });
    let recovery = cluster.coordinator.recover().unwrap();
    assert_eq!(recovery.orphan_aborts, 1, "tolerated but counted");
    assert_eq!(recovery.presumed_aborted, 0);
    assert_eq!(cluster.live_count(), 0);
}

#[test]
fn dedup_index_is_bounded_by_duration_plus_grace() {
    let cluster = two_shard_cluster(100);
    for i in 0..8 {
        let decision = cluster
            .coordinator
            .grant("alice", &format!("r{i}"), &span_both(1, 1), 10_000)
            .unwrap();
        assert!(decision.is_granted());
    }
    assert_eq!(cluster.coordinator.dedup_len(), 8);
    // Within the retry window nothing is evicted…
    cluster.clock.advance(10_000);
    cluster.coordinator.sweep_dedup();
    assert_eq!(cluster.coordinator.dedup_len(), 8);
    // …but once duration + grace passes, the index drains to empty.
    cluster.clock.advance(400_000);
    cluster.coordinator.sweep_dedup();
    assert_eq!(cluster.coordinator.dedup_len(), 0);
}

#[test]
fn release_frees_all_parts() {
    let cluster = two_shard_cluster(10);
    let decision = cluster
        .coordinator
        .grant("alice", "r1", &span_both(5, 3), HOUR_MS)
        .unwrap();
    let ClusterDecision::Granted { parts } = decision else {
        panic!()
    };
    cluster.coordinator.release(&parts);
    assert_eq!(cluster.live_count(), 0);
}

mod interleavings {
    //! The satellite proptest: under arbitrary interleavings of
    //! cross-shard grants, rejections, injected coordinator crashes, and
    //! recovery passes, no partial grant is ever observable.

    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// A cross-shard grant of (alpha, beta) units, possibly crashing.
        Grant {
            alpha: u64,
            beta: u64,
            crash: Option<CrashPoint>,
        },
        /// Run coordinator recovery.
        Recover,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u64..6, 1u64..6, arb_crash()).prop_map(|(alpha, beta, crash)| Op::Grant {
                alpha,
                beta,
                crash
            }),
            Just(Op::Recover),
        ]
    }

    fn arb_crash() -> impl Strategy<Value = Option<CrashPoint>> {
        prop_oneof![
            Just(None),
            Just(None),
            Just(None),
            Just(Some(CrashPoint::AfterPrepare)),
            Just(Some(CrashPoint::AfterCommitLogged)),
        ]
    }

    /// The §4 invariant, checked shard-side: every transaction is either
    /// fully committed (each part live, none in doubt) or leaves nothing.
    fn assert_no_partial_grants(cluster: &PromiseCluster, decisions: &[(String, ClusterDecision)]) {
        for (rid, decision) in decisions {
            match decision {
                ClusterDecision::Granted { parts } => {
                    assert_eq!(parts.len(), 2, "{rid}: cross-shard grant has 2 parts");
                    for part in parts {
                        let pm = &cluster.nodes[part.shard].pm;
                        assert!(
                            !pm.is_prepared(PromiseId(part.promise_id)),
                            "{rid}: granted part still in doubt on shard {}",
                            part.shard
                        );
                        let held = pm.promise_for_request(
                            &ClientId("prop".into()),
                            &RequestId(format!("{rid}@s{}", part.shard)),
                        );
                        assert_eq!(
                            held,
                            Some(PromiseId(part.promise_id)),
                            "{rid}: granted part missing on shard {}",
                            part.shard
                        );
                    }
                }
                ClusterDecision::Rejected { .. } => {
                    for shard in 0..cluster.shard_count() {
                        let held = cluster.nodes[shard].pm.promise_for_request(
                            &ClientId("prop".into()),
                            &RequestId(format!("{rid}@s{shard}")),
                        );
                        assert_eq!(held, None, "{rid}: rejected txn left a hold");
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn no_partial_grants_under_any_interleaving(ops in proptest::collection::vec(arb_op(), 1..14)) {
            // Small pools so rejections genuinely happen mid-sequence.
            let cluster = two_shard_cluster(12);
            let mut decisions: Vec<(String, ClusterDecision)> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Grant { alpha, beta, crash } => {
                        cluster.coordinator.set_crash_point(*crash);
                        let rid = format!("g{i}");
                        match cluster.coordinator.grant(
                            "prop",
                            &rid,
                            &span_both(*alpha, *beta),
                            HOUR_MS,
                        ) {
                            Ok(decision) => decisions.push((rid, decision)),
                            Err(CoordError::Crashed(_)) => {
                                // In doubt until a later Recover op.
                            }
                            Err(e) => panic!("unexpected coordinator error: {e}"),
                        }
                    }
                    Op::Recover => {
                        cluster.coordinator.recover().unwrap();
                        assert_no_partial_grants(&cluster, &decisions);
                    }
                }
            }
            // Final recovery resolves any transaction left in doubt by a
            // trailing crash, then the unit invariant must hold globally.
            cluster.coordinator.recover().unwrap();
            assert_no_partial_grants(&cluster, &decisions);
            for node in &cluster.nodes {
                prop_assert!(
                    node.pm.prepared_ids().is_empty(),
                    "no hold may remain in doubt after recovery"
                );
            }
            // Resource accounting never oversells on any shard.
            for node in &cluster.nodes {
                for (pool, demanded) in node.pm.promised_quantities() {
                    let on_hand = node.pm.quantity_on_hand(pool.clone()).unwrap_or(0);
                    prop_assert!(
                        demanded <= on_hand,
                        "oversell on {pool:?}: {demanded} > {on_hand}"
                    );
                }
            }
        }
    }
}
