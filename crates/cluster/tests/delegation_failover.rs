//! Delegation chains across leader fail-over: an edge manager's §5
//! delegated promise is backed by a promise on a cluster shard; killing
//! that shard's leader and promoting its warm follower must preserve the
//! backing promise (same id, same hold), and after the edge re-points its
//! delegation at the promoted manager the chain must keep working in both
//! directions — new bookings delegate to the promoted leader, and
//! releasing the edge promise cascades into it.

use std::sync::Arc;

use promises_cluster::PromiseCluster;
use promises_core::{
    ClientId, Clock, Predicate, PromiseDecision, PromiseManager, PromiseRequestSpec, RequestId,
};
use promises_rm::ResourceManager;

const POOL: &str = "carrier-capacity";
const HOUR_MS: u64 = 3_600_000;

fn delegated_grant(edge: &PromiseManager, rid: &str, amount: u64) -> promises_core::PromiseId {
    let resp = edge
        .request(
            PromiseRequestSpec::new(rid, "edge-client")
                .predicate(Predicate::qty_at_least(POOL, amount))
                .duration_ms(HOUR_MS),
        )
        .expect("delegated request runs");
    match resp.decision {
        PromiseDecision::Granted { promise, .. } => promise,
        PromiseDecision::Rejected { reason } => panic!("unexpected rejection: {reason}"),
    }
}

/// The backing promise the delegation created on the upstream shard, by
/// the manager's `{request}::delegated::{pool}` sub-request key.
fn backing_id(pm: &PromiseManager, rid: &str) -> Option<promises_core::PromiseId> {
    pm.promise_for_request(
        &ClientId("edge-client".to_owned()),
        &RequestId(format!("{rid}::delegated::{POOL}")),
    )
}

#[test]
fn delegated_promise_survives_leader_kill_and_rebinds_to_the_promoted_follower() {
    let mut cluster = PromiseCluster::build(2, 7);
    assert_eq!(cluster.register_quantity_pool(POOL, 100), 0);
    cluster.enable_replication();

    // The edge manager owns nothing itself; its carrier pool is a
    // delegation straight at shard 0's promise manager.
    let edge = Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::clone(&cluster.clock) as Arc<dyn Clock>,
    ));
    edge.delegate_pool(POOL, Arc::clone(&cluster.nodes[0].pm));

    let booking = delegated_grant(&edge, "book-1", 5);
    let backing = backing_id(&cluster.nodes[0].pm, "book-1").expect("backing promise on shard 0");
    assert_eq!(cluster.nodes[0].pm.live_count(), 1);

    // Kill the leader (the final journal ship runs before it dies) and
    // promote the warm follower: the backing promise must survive replay
    // with its id and hold intact.
    cluster.kill_shard(0);
    cluster.promote_follower(0);
    let promoted = Arc::clone(&cluster.nodes[0].pm);
    assert_eq!(
        promoted.live_count(),
        1,
        "promotion must replay the backing promise"
    );
    assert_eq!(
        backing_id(&promoted, "book-1"),
        Some(backing),
        "the backing promise keeps its id across fail-over"
    );

    // Re-point the delegation at the promoted manager. New bookings
    // delegate to it...
    edge.rebind_upstream(POOL, Arc::clone(&promoted));
    let booking2 = delegated_grant(&edge, "book-2", 3);
    assert_eq!(promoted.live_count(), 2);
    assert!(backing_id(&promoted, "book-2").is_some());

    // ...and releases cascade into it, including for the chain that was
    // created before the fail-over.
    edge.release(booking).expect("release cascades");
    assert_eq!(
        promoted.live_count(),
        1,
        "pre-fail-over chain released through the promoted leader"
    );
    assert_eq!(backing_id(&promoted, "book-1"), None);

    edge.release(booking2).expect("release cascades");
    assert_eq!(promoted.live_count(), 0);
    assert_eq!(edge.live_count(), 0, "edge books are clean");
}
