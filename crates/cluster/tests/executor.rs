//! Threaded-executor tests: the races this PR pins.
//!
//! Three bugs rode the old modeled-time server and each gets a regression
//! test here against the real thread-per-shard executor:
//!
//! 1. `handle` cloned the gateway *outside* any lock, so a concurrent
//!    crash–restart could leave a request running against the dead
//!    incarnation's gateway while recovery replayed the same journal —
//!    acknowledged grants could vanish. The incarnation slot (gateway +
//!    journal behind one `RwLock`, epoch bumped while exclusive) closes
//!    it; `crash_restart_under_load_never_drops_an_acknowledged_grant`
//!    pins it.
//! 2. `sync_replication` ran *after* the reply with no ordering against
//!    concurrent handlers, so an acknowledged grant could die with the
//!    leader before shipping. The group-commit barrier ("no reply leaves
//!    until its batch is flushed and shipped") closes it;
//!    `abrupt_kill_preserves_every_acknowledged_grant_on_the_follower`
//!    pins it with a kill that takes no courtesy sync.
//! 3. The barrier must be *bounded*: a wedged follower (100% drop) must
//!    cost a `stalled` counter, never a hung data path —
//!    `wedged_follower_stalls_the_counter_not_the_data_path` pins it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use promises_cluster::{ClusterDecision, PromiseCluster};
use promises_core::{ClientId, RequestId};
use promises_faults::{FaultInjector, FaultScenario};

const HOUR_MS: u64 = 3_600_000;

fn repl_faults(seed: u64, rate: f64) -> Option<Arc<FaultInjector>> {
    Some(Arc::new(FaultInjector::new(
        FaultScenario::quiet(seed).with_replication_faults(rate, rate),
    )))
}

/// Every acknowledged grant must be resolvable on `shard` — the promise
/// either lives or the request never acked. Single-shard grants keep the
/// client's request id; cross-shard parts are keyed by the 2PC
/// sub-request id (`rid@sN`), so accept either form.
fn assert_all_live(cluster: &PromiseCluster, shard: usize, acked: &[(String, String)], ctx: &str) {
    for (client, rid) in acked {
        let pm = &cluster.nodes[shard].pm;
        let client_id = ClientId(client.clone());
        let found = pm
            .promise_for_request(&client_id, &RequestId(rid.clone()))
            .or_else(|| pm.promise_for_request(&client_id, &RequestId(format!("{rid}@s{shard}"))));
        assert!(
            found.is_some(),
            "acknowledged grant {client}/{rid} missing on shard {shard} ({ctx})"
        );
    }
}

#[test]
fn worker_pool_grows_and_never_shrinks() {
    let cluster = PromiseCluster::build(1, 3);
    assert_eq!(cluster.nodes[0].server.worker_count(), 1);
    cluster.nodes[0].server.set_workers(4);
    assert_eq!(cluster.nodes[0].server.worker_count(), 4);
    cluster.nodes[0].server.set_workers(2);
    assert_eq!(
        cluster.nodes[0].server.worker_count(),
        4,
        "parked workers cost nothing; the pool only grows"
    );
}

#[test]
fn workers_overlap_modeled_service_time_inside_one_shard() {
    let cluster = PromiseCluster::build(1, 5);
    assert_eq!(cluster.register_quantity_pool("alpha", 1_000_000), 0);
    cluster.nodes[0].server.set_workers(4);
    cluster.set_service_time_us(5_000);
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..4 {
            let coordinator = Arc::clone(&cluster.coordinator);
            s.spawn(move || {
                let decision = coordinator
                    .grant(
                        &format!("c{c}"),
                        &format!("r{c}"),
                        &["qty('alpha') >= 1".to_string()],
                        HOUR_MS,
                    )
                    .expect("quiet bus cannot fail");
                assert!(matches!(decision, ClusterDecision::Granted { .. }));
            });
        }
    });
    let elapsed = start.elapsed();
    // Four 5ms service sleeps one after another would take >= 20ms; four
    // workers sleeping them concurrently must land well under that.
    assert!(
        elapsed < Duration::from_millis(18),
        "4 x 5ms ops took {elapsed:?} — workers are not overlapping"
    );
    assert_eq!(cluster.nodes[0].server.queue_depth(), 0);
}

#[test]
fn group_commit_covers_every_acknowledged_record() {
    let cluster = PromiseCluster::build(1, 7);
    assert_eq!(cluster.register_quantity_pool("alpha", 1_000_000), 0);
    cluster.nodes[0].server.set_workers(4);
    std::thread::scope(|s| {
        for c in 0..6 {
            let coordinator = Arc::clone(&cluster.coordinator);
            s.spawn(move || {
                for op in 0..15 {
                    if let Ok(ClusterDecision::Granted { parts }) = coordinator.grant(
                        &format!("c{c}"),
                        &format!("r{c}-{op}"),
                        &["qty('alpha') >= 1".to_string()],
                        HOUR_MS,
                    ) {
                        coordinator.release(&parts);
                    }
                }
            });
        }
    });
    let journal = &cluster.nodes[0].journal;
    assert_eq!(
        journal.flushed_seq(),
        journal.tip_seq(),
        "no reply left the node with its records unflushed"
    );
    let stats = cluster.nodes[0].server.commit_stats();
    assert!(stats.batches >= 1, "the committer led at least one batch");
    assert_eq!(
        stats.stalled, 0,
        "no follower attached, nothing to stall on"
    );
    let (writes, records) = journal.flush_stats();
    assert!(writes <= records, "never more than one write per record");
}

/// S3 pin: the incarnation epoch advances exactly once per slot swap —
/// crash–restart and promotion both count — and readers that see the new
/// epoch see the new incarnation (the bump happens while the swap still
/// holds the slot exclusively).
#[test]
fn incarnation_epoch_counts_every_swap() {
    let mut cluster = PromiseCluster::build(2, 11);
    assert_eq!(cluster.register_quantity_pool("alpha", 100), 0);
    assert_eq!(cluster.nodes[0].server.incarnation_epoch(), 0);
    cluster.crash_restart_shard(0);
    assert_eq!(cluster.nodes[0].server.incarnation_epoch(), 1);
    cluster.enable_replication();
    cluster.kill_shard(0);
    cluster.promote_follower(0);
    assert_eq!(cluster.nodes[0].server.incarnation_epoch(), 2);
    assert_eq!(
        cluster.nodes[1].server.incarnation_epoch(),
        0,
        "other shards' slots are untouched"
    );
}

/// S1 pin: crash–restarts racing live traffic. The old server read the
/// gateway outside any lock, so a restart could replay the journal while
/// a straggler handler appended to it through the dead incarnation —
/// dropping acknowledged grants. Now the swap write-locks the slot
/// (quiescing in-flight handlers), recovery runs inside the quiesced
/// window, and every grant acknowledged before, during, or after the
/// five restarts must still be live on both shards.
#[test]
fn crash_restart_under_load_never_drops_an_acknowledged_grant() {
    let mut cluster = PromiseCluster::build(2, 13);
    assert_eq!(cluster.register_quantity_pool("alpha", 1_000_000), 0);
    assert_eq!(cluster.register_quantity_pool("beta", 1_000_000), 1);
    cluster.set_service_time_us(100);
    let acked: Vec<(String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let coordinator = Arc::clone(&cluster.coordinator);
                s.spawn(move || {
                    let mut acked = Vec::new();
                    let client = format!("c{c}");
                    for op in 0..25 {
                        let rid = format!("r{c}-{op}");
                        let predicates = vec![
                            "qty('alpha') >= 1".to_string(),
                            "qty('beta') >= 1".to_string(),
                        ];
                        if let Ok(ClusterDecision::Granted { .. }) =
                            coordinator.grant(&client, &rid, &predicates, HOUR_MS)
                        {
                            acked.push((client.clone(), rid));
                        }
                    }
                    acked
                })
            })
            .collect();
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(2));
            cluster.crash_restart_shard(0);
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(cluster.nodes[0].server.incarnation_epoch(), 5);
    assert!(
        !acked.is_empty(),
        "the load must actually land grants around the restarts"
    );
    assert_all_live(&cluster, 0, &acked, "after 5 crash-restarts under load");
    assert_all_live(&cluster, 1, &acked, "untouched shard");
}

/// S2 pin: the plug pulled with *no* courtesy sync, at replication fault
/// rates 0/10/20%. The semi-synchronous guarantee must come entirely
/// from the group-commit barrier: every grant acknowledged to a client
/// before the kill must survive onto the promoted follower, because its
/// batch was flushed and shipped before the reply left. The old
/// reply-then-sync ordering loses acknowledged grants here.
#[test]
fn abrupt_kill_preserves_every_acknowledged_grant_on_the_follower() {
    for (i, rate) in [0.0, 0.1, 0.2].into_iter().enumerate() {
        let mut cluster = PromiseCluster::build(2, 17 + i as u64);
        assert_eq!(cluster.register_quantity_pool("alpha", 1_000_000), 0);
        cluster.enable_replication();
        cluster.set_replication_faults(repl_faults(0x52_0000 + i as u64, rate));
        cluster.set_service_time_us(100);
        let acked: Vec<(String, String)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|c| {
                    let coordinator = Arc::clone(&cluster.coordinator);
                    s.spawn(move || {
                        let mut acked = Vec::new();
                        let client = format!("c{c}");
                        for op in 0..30 {
                            let rid = format!("r{c}-{op}");
                            match coordinator.grant(
                                &client,
                                &rid,
                                &["qty('alpha') >= 1".to_string()],
                                HOUR_MS,
                            ) {
                                Ok(ClusterDecision::Granted { .. }) => {
                                    acked.push((client.clone(), rid));
                                }
                                // Rejections and wire errors after the
                                // kill are expected; only acks count.
                                Ok(ClusterDecision::Rejected { .. }) | Err(_) => {}
                            }
                        }
                        acked
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(3));
            cluster.kill_shard_abrupt(0);
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        assert!(
            !acked.is_empty(),
            "some grants must ack before the kill (rate {rate})"
        );
        cluster.promote_follower(0);
        assert_all_live(
            &cluster,
            0,
            &acked,
            &format!("promoted follower, repl fault rate {rate}"),
        );
    }
}

/// S2/S3 pin, the bounded side: a *wedged* follower (100% replication
/// drop — beyond the ship loop's retry budget) must not hang the data
/// path. The caller leads one flush+ship round, gives up, counts a
/// stall, and the reply still leaves; the follower's watermark honestly
/// stays behind the journal tip for the watchdogs to see.
#[test]
fn wedged_follower_stalls_the_counter_not_the_data_path() {
    let mut cluster = PromiseCluster::build(1, 29);
    assert_eq!(cluster.register_quantity_pool("alpha", 100), 0);
    cluster.enable_replication();
    cluster.set_replication_faults(repl_faults(0x3EDD, 1.0));
    let decision = cluster
        .coordinator
        .grant("c0", "r0", &["qty('alpha') >= 5".to_string()], HOUR_MS)
        .expect("the data path must answer despite the wedged follower");
    assert!(matches!(decision, ClusterDecision::Granted { .. }));
    let stats = cluster.nodes[0].server.commit_stats();
    assert!(stats.stalled >= 1, "the give-up must be counted: {stats:?}");
    let follower = cluster.nodes[0].follower.as_ref().expect("replication on");
    assert!(
        follower.watermark() < cluster.nodes[0].journal.tip_seq(),
        "a wedged follower must honestly lag the tip"
    );
    // The journal itself still flushed — durability is local-first.
    assert_eq!(
        cluster.nodes[0].journal.flushed_seq(),
        cluster.nodes[0].journal.tip_seq()
    );
}
