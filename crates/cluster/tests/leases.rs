//! Per-shard escrow-lease tests: local grants without coordination,
//! demand-driven rebalancing, durable lease splits across crash–restart,
//! and the lease-sum invariant under arbitrary interleavings.

use std::sync::atomic::Ordering;

use promises_cluster::{ClusterDecision, PromiseCluster};

const HOUR_MS: u64 = 3_600_000;

/// Two shards with leases on: `alpha`→0, `beta`→1 by round-robin
/// ownership, both pools hosted everywhere, `c0`/`c1` pinned to home
/// shards 0/1.
fn leased_cluster(qty: u64) -> PromiseCluster {
    let cluster = PromiseCluster::build(2, 7);
    let dir = cluster.enable_leases();
    dir.pin_home("c0", 0);
    dir.pin_home("c1", 1);
    assert_eq!(cluster.register_quantity_pool("alpha", qty), 0);
    assert_eq!(cluster.register_quantity_pool("beta", qty), 1);
    cluster
}

fn counter(cluster: &PromiseCluster, name: &str) -> u64 {
    cluster.telemetry.counter(name).load(Ordering::Relaxed)
}

fn lease_sum(cluster: &PromiseCluster, pool: &str) -> u64 {
    cluster
        .nodes
        .iter()
        .map(|n| n.pm.lease_of(pool).unwrap_or(0))
        .sum()
}

#[test]
fn covered_grant_is_local_and_writes_no_coordinator_record() {
    let cluster = leased_cluster(100);
    let decision = cluster
        .coordinator
        .grant("c0", "r1", &["qty('alpha') >= 5".to_string()], HOUR_MS)
        .unwrap();
    assert!(decision.is_granted());
    assert!(
        cluster.coordinator.log().entries().unwrap().is_empty(),
        "lease-covered grant must not touch the coordinator log"
    );
    assert_eq!(cluster.nodes[0].pm.live_count(), 1);
    assert_eq!(counter(&cluster, "cluster.lease.local_grants"), 1);
    assert_eq!(counter(&cluster, "cluster.lease.coordinator_fallbacks"), 0);
}

#[test]
fn rebalance_makes_hot_pool_grants_local_on_a_non_owner_shard() {
    let cluster = leased_cluster(100);
    // c1's home (shard 1) starts with zero alpha lease: the first grant
    // falls back to the ownership path (owner shard 0 serves it) while
    // registering demand at home.
    let first = cluster
        .coordinator
        .grant("c1", "r1", &["qty('alpha') >= 5".to_string()], HOUR_MS)
        .unwrap();
    assert!(first.is_granted());
    assert_eq!(counter(&cluster, "cluster.lease.coordinator_fallbacks"), 1);
    assert_eq!(cluster.nodes[0].pm.live_count(), 1, "owner served it");

    // The rebalance cycle chases that demand: alpha headroom migrates to
    // shard 1, and the next grant is purely local there.
    let report = cluster.rebalance_leases().expect("leases enabled");
    assert!(report.moved > 0, "headroom must migrate toward demand");
    let second = cluster
        .coordinator
        .grant("c1", "r2", &["qty('alpha') >= 5".to_string()], HOUR_MS)
        .unwrap();
    assert!(second.is_granted());
    assert_eq!(counter(&cluster, "cluster.lease.local_grants"), 1);
    assert_eq!(cluster.nodes[1].pm.live_count(), 1, "home served it");
    assert!(
        cluster.coordinator.log().entries().unwrap().is_empty(),
        "still no coordination round"
    );
}

#[test]
fn stale_directory_estimate_costs_a_round_trip_never_an_oversell() {
    let cluster = leased_cluster(10);
    // c1's fallback grant consumes real headroom at the owner (shard 0)
    // without touching the advisory directory's estimate for home 0.
    let fallback = cluster
        .coordinator
        .grant("c1", "r1", &["qty('alpha') >= 8".to_string()], HOUR_MS)
        .unwrap();
    assert!(fallback.is_granted());
    assert_eq!(counter(&cluster, "cluster.lease.coordinator_fallbacks"), 1);

    // c0's directory still estimates 10 units at home 0, so the local
    // attempt happens — and the home shard's authoritative escrow check
    // refuses. Home owns alpha, so the rejection is final.
    let over = cluster
        .coordinator
        .grant("c0", "r2", &["qty('alpha') >= 5".to_string()], HOUR_MS)
        .unwrap();
    assert!(matches!(over, ClusterDecision::Rejected { .. }));
    assert_eq!(counter(&cluster, "cluster.lease.local_rejects"), 1);
    assert_eq!(cluster.nodes[0].pm.promised_qty("alpha"), 8);

    // What the remaining lease genuinely covers still grants locally.
    let fits = cluster
        .coordinator
        .grant("c0", "r3", &["qty('alpha') >= 2".to_string()], HOUR_MS)
        .unwrap();
    assert!(fits.is_granted());
    assert_eq!(counter(&cluster, "cluster.lease.local_grants"), 1);
    assert_eq!(cluster.nodes[0].pm.promised_qty("alpha"), 10);
}

#[test]
fn multi_pool_footprint_served_locally_counts_a_log_skip() {
    let cluster = leased_cluster(100);
    // alpha lives on shard 0, beta's lease starts on shard 1: the span
    // falls back to a full 2PC round first (and notes demand at home 0).
    let first = cluster
        .coordinator
        .grant(
            "c0",
            "r1",
            &[
                "qty('alpha') >= 2".to_string(),
                "qty('beta') >= 2".to_string(),
            ],
            HOUR_MS,
        )
        .unwrap();
    assert!(first.is_granted());
    assert_eq!(counter(&cluster, "cluster.lease.coord_log_skips"), 0);
    assert!(!cluster.coordinator.log().entries().unwrap().is_empty());

    // After a rebalance both pools have headroom at home 0, so the same
    // span becomes one local grant — no Begin/Commit records this time.
    cluster.rebalance_leases();
    let log_len = cluster.coordinator.log().len();
    let second = cluster
        .coordinator
        .grant(
            "c0",
            "r2",
            &[
                "qty('alpha') >= 2".to_string(),
                "qty('beta') >= 2".to_string(),
            ],
            HOUR_MS,
        )
        .unwrap();
    assert!(second.is_granted());
    assert_eq!(counter(&cluster, "cluster.lease.coord_log_skips"), 1);
    assert_eq!(
        cluster.coordinator.log().len(),
        log_len,
        "the lease saved the coordination round"
    );
}

#[test]
fn crash_restart_reconstructs_the_lease_split() {
    let mut cluster = leased_cluster(100);
    // Skew the split away from the registration default, with live holds.
    let _ = cluster
        .coordinator
        .grant("c1", "r1", &["qty('alpha') >= 5".to_string()], HOUR_MS)
        .unwrap();
    cluster.rebalance_leases();
    let _ = cluster
        .coordinator
        .grant("c1", "r2", &["qty('alpha') >= 7".to_string()], HOUR_MS)
        .unwrap();

    for index in 0..cluster.shard_count() {
        let pre = cluster.nodes[index].pm.state_digest();
        let leases_pre: Vec<_> = cluster.nodes[index].pm.leases();
        cluster.crash_restart_shard(index);
        assert_eq!(
            cluster.nodes[index].pm.state_digest(),
            pre,
            "shard {index} state (lease lines included) must survive"
        );
        assert_eq!(cluster.nodes[index].pm.leases(), leases_pre);
    }
    assert_eq!(lease_sum(&cluster, "alpha"), 100);
}

#[test]
fn mid_rebalance_crash_only_shrinks_the_sum_and_heals_next_cycle() {
    let cluster = leased_cluster(100);
    // Demand at the non-owner home makes the next cycle move alpha.
    let _ = cluster
        .coordinator
        .grant("c1", "r1", &["qty('alpha') >= 1".to_string()], HOUR_MS)
        .unwrap();
    cluster.arm_rebalance_crash();
    let crashed = cluster.rebalance_leases().expect("leases enabled");
    assert!(crashed.crashed, "armed crash fires on observed demand");
    let after_crash = lease_sum(&cluster, "alpha");
    assert!(
        after_crash < 100,
        "withdraws landed, deposits did not: sum must shrink"
    );

    // The next cycle's heal pass re-credits the stranded headroom.
    let heal = cluster.rebalance_leases().expect("leases enabled");
    assert_eq!(heal.healed, 100 - after_crash);
    assert_eq!(lease_sum(&cluster, "alpha"), 100);
    assert!(!heal.crashed);
}

#[test]
#[should_panic(expected = "enable_leases must run before pools")]
fn enable_leases_after_registration_panics() {
    let cluster = PromiseCluster::build(2, 7);
    cluster.register_quantity_pool("alpha", 10);
    cluster.enable_leases();
}

mod interleavings {
    //! The satellite proptest: under arbitrary interleavings of grants,
    //! releases, expiries, rebalances, mid-rebalance crashes, and shard
    //! crash–restarts, every shard keeps promised ≤ lease, no pool's
    //! lease sum ever exceeds its registered total, and a restarted
    //! shard's state digest is byte-identical to its pre-kill state.

    use super::*;
    use promises_cluster::GrantPart;
    use promises_core::Clock;
    use proptest::prelude::*;

    const POOLS: [&str; 2] = ["alpha", "beta"];
    const TOTAL: u64 = 60;

    #[derive(Debug, Clone)]
    enum Op {
        Grant {
            client: usize,
            pool: usize,
            amount: u64,
            span_both: bool,
        },
        Release {
            index: usize,
        },
        Advance {
            ms: u64,
        },
        CrashShard {
            shard: usize,
        },
        ArmRebalanceCrash,
    }

    fn arb_grant() -> impl Strategy<Value = Op> {
        (0usize..2, 0usize..2, 1u64..8, any::<bool>()).prop_map(
            |(client, pool, amount, span_both)| Op::Grant {
                client,
                pool,
                amount,
                span_both,
            },
        )
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        // The shim's `prop_oneof!` is unweighted: repeat the grant arm so
        // the mix stays grant-heavy.
        prop_oneof![
            arb_grant(),
            arb_grant(),
            arb_grant(),
            (0usize..16).prop_map(|index| Op::Release { index }),
            (1u64..120_000).prop_map(|ms| Op::Advance { ms }),
            (0usize..2).prop_map(|shard| Op::CrashShard { shard }),
            Just(Op::ArmRebalanceCrash),
        ]
    }

    fn assert_lease_invariants(cluster: &PromiseCluster, step: usize) -> Result<(), TestCaseError> {
        for pool in POOLS {
            let sum = lease_sum(cluster, pool);
            prop_assert!(
                sum <= TOTAL,
                "step {step}: lease sum for {pool} minted units: {sum} > {TOTAL}"
            );
            for node in &cluster.nodes {
                let lease = node.pm.lease_of(pool).unwrap_or(0);
                let promised = node.pm.promised_qty(pool);
                prop_assert!(
                    promised <= lease,
                    "step {step}: shard {} oversold {pool}: {promised} > {lease}",
                    node.index
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn lease_sum_and_escrow_hold_under_any_interleaving(
            ops in proptest::collection::vec(arb_op(), 1..20)
        ) {
            let mut cluster = leased_cluster(TOTAL);
            let mut held: Vec<Vec<GrantPart>> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Grant { client, pool, amount, span_both } => {
                        let mut predicates =
                            vec![format!("qty('{}') >= {amount}", POOLS[*pool])];
                        if *span_both {
                            predicates
                                .push(format!("qty('{}') >= {amount}", POOLS[1 - *pool]));
                        }
                        let decision = cluster.coordinator.grant(
                            &format!("c{client}"),
                            &format!("g{i}"),
                            &predicates,
                            50_000,
                        ).unwrap();
                        if let ClusterDecision::Granted { parts } = decision {
                            held.push(parts);
                        }
                    }
                    Op::Release { index } => {
                        if !held.is_empty() {
                            let parts = held.swap_remove(index % held.len());
                            cluster.coordinator.release(&parts);
                        }
                    }
                    Op::Advance { ms } => {
                        // Drives expiry AND a rebalance cycle (which may
                        // fire a previously armed crash).
                        cluster.advance_and_prune(*ms);
                        held.retain(|parts| {
                            parts.iter().all(|p| p.expires_at > cluster.clock.now_ms())
                        });
                    }
                    Op::CrashShard { shard } => {
                        let pre = cluster.nodes[*shard].pm.state_digest();
                        cluster.crash_restart_shard(*shard);
                        prop_assert_eq!(
                            cluster.nodes[*shard].pm.state_digest(),
                            pre,
                            "step {}: shard {} digest changed across restart",
                            i,
                            shard
                        );
                    }
                    Op::ArmRebalanceCrash => cluster.arm_rebalance_crash(),
                }
                assert_lease_invariants(&cluster, i)?;
            }

            // Quiesce: two rebalance cycles consume any still-armed crash
            // and heal whatever a fired one stranded — the lease sum must
            // return to the registered total exactly.
            cluster.rebalance_leases();
            cluster.rebalance_leases();
            for pool in POOLS {
                prop_assert_eq!(
                    lease_sum(&cluster, pool),
                    TOTAL,
                    "healed cluster must account for every unit of {}",
                    pool
                );
            }
        }
    }
}
