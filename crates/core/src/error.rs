//! Error and rejection types for the promise layer.

use std::fmt;

use promises_rm::RmError;

use crate::ids::{InstanceId, PoolId, PromiseId};

/// Why a promise request was rejected. Rejections are *immediate* — the
/// promise layer never blocks a requester (paper §9: "unfulfillable promise
/// requests are rejected immediately rather than blocking, \[so\] we do not
/// have to worry about the deadlock issues that plague lock-based
/// algorithms").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// An anonymous-view quantity bound cannot be met: outstanding promised
    /// quantity plus the new request exceeds quantity on hand.
    InsufficientQuantity {
        /// The pool that is oversubscribed.
        pool: PoolId,
        /// Quantity currently on hand.
        on_hand: u64,
        /// Sum of quantities required by live promises plus this request.
        demanded: u64,
    },
    /// A named instance is already promised to another client or taken.
    InstanceUnavailable {
        /// The pool the instance belongs to.
        pool: PoolId,
        /// The contested instance.
        instance: InstanceId,
    },
    /// No assignment of distinct instances satisfies all live promises
    /// plus the new property-view request (no perfect bipartite matching).
    Unsatisfiable {
        /// The pool whose instances cannot cover the demand.
        pool: PoolId,
    },
    /// An exchanged (handed-back) promise id does not exist or is expired.
    UnknownExchange(PromiseId),
    /// The request referenced a pool the manager does not know.
    UnknownPool(PoolId),
    /// A delegated (upstream) promise request was rejected.
    UpstreamRejected {
        /// The remote pool whose upstream manager said no.
        pool: PoolId,
    },
    /// The manager is overloaded or administratively degraded: new grants
    /// are refused immediately (the paper's "reject immediately, never
    /// block" stance applied to overload) while existing promises continue
    /// to be honored, checked and released. Retryable after backoff.
    Overloaded,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::InsufficientQuantity {
                pool,
                on_hand,
                demanded,
            } => write!(
                f,
                "pool {pool}: demanded {demanded} exceeds {on_hand} on hand"
            ),
            RejectReason::InstanceUnavailable { pool, instance } => {
                write!(f, "instance {instance} in pool {pool} is unavailable")
            }
            RejectReason::Unsatisfiable { pool } => {
                write!(f, "no satisfying assignment exists in pool {pool}")
            }
            RejectReason::UnknownExchange(id) => {
                write!(f, "exchanged promise {id} unknown or expired")
            }
            RejectReason::UnknownPool(pool) => write!(f, "unknown pool {pool}"),
            RejectReason::UpstreamRejected { pool } => {
                write!(f, "upstream manager rejected delegated promise on {pool}")
            }
            RejectReason::Overloaded => {
                write!(f, "manager overloaded: new grants refused, retry later")
            }
        }
    }
}

/// Failure of an application action executed under promise protection.
///
/// Distinguishing application failures from storage failures lets the
/// promise manager retry transparently when an action's transaction is a
/// deadlock victim, while surfacing business failures to the caller (with
/// any scheduled promise releases cancelled, per §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionError {
    /// Application-level failure ("no shipper available today").
    App(String),
    /// Resource-manager failure inside the action; deadlock victims are
    /// retried by the manager.
    Rm(RmError),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::App(m) => f.write_str(m),
            ActionError::Rm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ActionError {}

impl From<RmError> for ActionError {
    fn from(e: RmError) -> Self {
        ActionError::Rm(e)
    }
}

impl From<String> for ActionError {
    fn from(m: String) -> Self {
        ActionError::App(m)
    }
}

impl From<&str> for ActionError {
    fn from(m: &str) -> Self {
        ActionError::App(m.to_owned())
    }
}

/// Errors raised by promise-manager operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromiseError {
    /// The referenced promise does not exist (never granted or released).
    UnknownPromise(PromiseId),
    /// The promise exists but has expired — the paper's "promise-expired"
    /// error returned to clients operating under stale promises (§2).
    PromiseExpired(PromiseId),
    /// The action executed under promise protection failed; any promises
    /// scheduled for release with it were retained (§4's atomicity rule).
    ActionFailed(String),
    /// The action succeeded but would have violated a live promise it was
    /// not releasing, so it was rolled back (§8 "Executing Actions").
    ViolationRolledBack {
        /// The promise the action would have broken.
        violated: PromiseId,
        /// Human-readable explanation.
        detail: String,
    },
    /// An underlying resource-manager error (deadlock victims surface here
    /// after the manager's internal retries are exhausted).
    Rm(RmError),
    /// The pool is not registered with this manager.
    UnknownPool(PoolId),
    /// A scope-enforced action wrote to a promise-protected pool that none
    /// of its environment's promises covers (§2: the client "should not
    /// use the promise for pink widgets to ask the order service to
    /// deliver some un-promised blue widgets").
    ScopeViolation {
        /// The pool written outside the environment's promise scope.
        pool: PoolId,
    },
    /// The journal handed to recovery could not be decoded.
    JournalCorrupt(String),
    /// An armed compaction-crash hook fired: the fault-injection harness
    /// asked [`crate::PromiseManager::compact`] to die mid-compaction.
    /// The journal is left in whichever state the crash point dictates
    /// (old history intact, or the freshly swapped checkpoint).
    CompactionInterrupted,
    /// A re-arrangement raced with a client observing its allocations
    /// (see [`crate::PromiseManager::promise`]): the operation computed an
    /// assignment that would move a just-pinned allocation, and must be
    /// re-run against the pinned state. Retried internally by the manager;
    /// surfaces only if the retry budget is exhausted, in which case a
    /// resend is safe (grants are deduplicated by request id).
    ObservationConflict,
}

impl fmt::Display for PromiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromiseError::UnknownPromise(id) => write!(f, "unknown promise {id}"),
            PromiseError::PromiseExpired(id) => write!(f, "promise-expired: {id}"),
            PromiseError::ActionFailed(msg) => write!(f, "action failed: {msg}"),
            PromiseError::ViolationRolledBack { violated, detail } => {
                write!(f, "action rolled back: would violate {violated} ({detail})")
            }
            PromiseError::Rm(e) => write!(f, "resource manager: {e}"),
            PromiseError::UnknownPool(p) => write!(f, "unknown pool {p}"),
            PromiseError::ScopeViolation { pool } => {
                write!(f, "action wrote pool {pool} outside its promise scope")
            }
            PromiseError::JournalCorrupt(detail) => write!(f, "journal corrupt: {detail}"),
            PromiseError::CompactionInterrupted => {
                write!(f, "compaction crashed at an armed fault point")
            }
            PromiseError::ObservationConflict => {
                write!(f, "re-arrangement raced with an observed allocation; retry")
            }
        }
    }
}

impl PromiseError {
    /// True if retrying the *same* operation may succeed: transient
    /// resource-manager failures (deadlock victims, storage faults) are
    /// retryable; semantic outcomes (unknown/expired promise, violations,
    /// action failures) are not. Used by the wire layer's retry policy.
    pub fn retryable(&self) -> bool {
        match self {
            PromiseError::Rm(e) => e.retryable(),
            PromiseError::ObservationConflict => true,
            _ => false,
        }
    }
}

impl std::error::Error for PromiseError {}

impl From<RmError> for PromiseError {
    fn from(e: RmError) -> Self {
        PromiseError::Rm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_display() {
        let r = RejectReason::InsufficientQuantity {
            pool: PoolId::from("widgets"),
            on_hand: 3,
            demanded: 8,
        };
        assert!(r.to_string().contains("widgets"));
        assert!(r.to_string().contains("8"));
        let r = RejectReason::InstanceUnavailable {
            pool: PoolId::from("rooms"),
            instance: InstanceId::from("512"),
        };
        assert!(r.to_string().contains("512"));
    }

    #[test]
    fn promise_errors_display_and_convert() {
        let e: PromiseError = RmError::NoSuchTable("t".into()).into();
        assert!(e.to_string().contains("resource manager"));
        assert!(PromiseError::PromiseExpired(PromiseId(9))
            .to_string()
            .contains("promise-expired"));
    }
}
