//! The Promise Manager (paper §2, §8).
//!
//! "A promise manager sits between clients and application services and
//! implements Promise functionality on behalf of a number of services and
//! resource managers. The job of a promise manager is to work with
//! application services and resource managers to grant or deny promise
//! requests, check on resource availability and ensure that promises are
//! not violated."
//!
//! # Concurrency design (following §8, footprint-refined)
//!
//! Every promise operation — grant, release, modify, expiry pruning, and
//! the post-action check of [`PromiseManager::execute`] — runs inside one
//! short local RM transaction, following the prototype's design: "The
//! solution we adopted here was to wrap each promise operation in a
//! transaction... This transaction covers all of the action code executed
//! inside the application as well as the subsequent promise checking code
//! (including modifications to the promise table)."
//!
//! The prototype serialised those transactions on a *single* exclusive
//! synchronisation point, making every promise operation conflict with
//! every other one. That behaviour is kept as [`LockingMode::Global`]
//! (the benchmark baseline). The default, [`LockingMode::Footprint`],
//! instead derives each operation's *footprint* — the pools its
//! predicates constrain, its released promises cover, or its action
//! actually wrote — and locks one synchronisation point per pool
//! (`promise-ops/<pool>`), acquired in canonical sorted order so promise
//! operations never deadlock against one another (§9). Operations over
//! disjoint pools proceed fully in parallel; the checker then re-checks
//! only the footprint's pools against the promises that intersect them
//! (see [`crate::promise::PromiseTable`]'s per-pool indexes).
//!
//! Because the synchronisation points are RM locks, a cycle between a
//! promise check and an in-flight application action is visible to the
//! RM's wait-for graph and broken by victimising one transaction; the
//! manager transparently retries deadlock victims a bounded number of
//! times. The promise layer itself **never blocks a client on promise
//! availability**: unfulfillable requests are rejected immediately (§9),
//! which is why the promise layer introduces no deadlocks of its own.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use promises_rm::{Record, ResourceManager, RmError, Txn};
use promises_telemetry::{
    current_trace, Histogram, HistogramSnapshot, SpanKind, SpanOutcome, Telemetry,
};

use crate::catalog::Catalog;
use crate::check::{CheckError, Checker, CheckerStats};
use crate::clock::Clock;
use crate::environment::Environment;
use crate::error::{ActionError, PromiseError, RejectReason};
use crate::ids::{ClientId, InstanceId, PoolId, PromiseId, RequestId};
use crate::journal::{CheckpointRecord, CheckpointState, JournalOp, PromiseJournal};
use crate::predicate::Predicate;
use crate::promise::{PromiseRecord, PromiseTable};
use crate::schema::PoolSchema;

/// RM synchronisation point serialising promise operations: locked whole
/// under [`LockingMode::Global`]; suffixed with `/<pool>` per footprint
/// pool under [`LockingMode::Footprint`].
const PM_OPS: &str = "promise-ops";

/// Default tombstone lifetime past the reap: long enough that any client
/// still retrying against an expired promise sees "promise-expired", short
/// enough that the tombstone map stays proportional to *recent* expiries.
const DEFAULT_TOMBSTONE_GRACE_MS: u64 = 300_000;

/// Default [`PromiseManager::maybe_compact`] trigger: journals shorter
/// than this are cheap to replay wholesale, so compaction isn't worth a
/// checkpoint write.
const DEFAULT_COMPACTION_THRESHOLD: usize = 1_024;

/// How promise operations serialise against one another.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LockingMode {
    /// One global synchronisation point; every promise operation conflicts
    /// with every other one (the paper prototype's design — kept as the
    /// benchmark baseline).
    Global,
    /// One synchronisation point per pool, acquired in sorted order over
    /// the operation's footprint; operations on disjoint pools run in
    /// parallel and post-action checks cover only the written pools.
    #[default]
    Footprint,
}

/// Upstream promise references held by a delegated promise.
type UpstreamRefs = Vec<(Arc<PromiseManager>, PromiseId)>;

/// A promise request as specified in §6: identifier, predicates,
/// duration, and optionally existing promises handed back in exchange.
#[derive(Debug, Clone)]
pub struct PromiseRequestSpec {
    /// Client-chosen correlation identifier.
    pub request: RequestId,
    /// The requesting client.
    pub client: ClientId,
    /// Predicates to be maintained — granted atomically or not at all (§4).
    pub predicates: Vec<Predicate>,
    /// Requested duration; the manager "might offer a guarantee that
    /// expires sooner than the client wished" (§6).
    pub duration_ms: u64,
    /// Existing promises released atomically iff this request is granted
    /// (§4 "Modify the predicate whose preservation is promised").
    pub exchange: Vec<PromiseId>,
}

impl PromiseRequestSpec {
    /// Starts a spec with defaults (1 hour duration, no exchange).
    pub fn new(request: impl Into<RequestId>, client: impl Into<ClientId>) -> Self {
        Self {
            request: request.into(),
            client: client.into(),
            predicates: Vec::new(),
            duration_ms: 3_600_000,
            exchange: Vec::new(),
        }
    }

    /// Adds a predicate.
    pub fn predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Sets the requested duration.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.duration_ms = ms;
        self
    }

    /// Hands back an existing promise in exchange.
    pub fn exchanging(mut self, id: PromiseId) -> Self {
        self.exchange.push(id);
        self
    }
}

/// Outcome of a promise request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromiseDecision {
    /// Granted: the predicates will hold until release or expiry.
    Granted {
        /// The new promise's identifier.
        promise: PromiseId,
        /// Expiry on the manager's clock (may be sooner than requested).
        expires_at: u64,
    },
    /// Rejected immediately (never blocks).
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

impl PromiseDecision {
    /// The granted promise id, if granted.
    pub fn granted_id(&self) -> Option<PromiseId> {
        match self {
            PromiseDecision::Granted { promise, .. } => Some(*promise),
            PromiseDecision::Rejected { .. } => None,
        }
    }

    /// True if granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, PromiseDecision::Granted { .. })
    }
}

/// The §6 promise response: decision plus correlation identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiseResponse {
    /// Echo of the request identifier.
    pub correlation: RequestId,
    /// Grant or rejection.
    pub decision: PromiseDecision,
}

#[derive(Debug, Default)]
struct OpLatencyMetrics {
    lock_wait: Histogram,
    check: Histogram,
}

impl OpLatencyMetrics {
    fn add_lock_wait(&self, since: Instant) {
        self.lock_wait.record_duration(since.elapsed());
    }

    /// Records the checking time and hands the measurement back so the
    /// telemetry mirror ([`PromiseManager::record_check`]) doesn't read
    /// the clock a second time for the same interval.
    fn add_check(&self, since: Instant) -> std::time::Duration {
        let dur = since.elapsed();
        self.check.record_duration(dur);
        dur
    }

    fn snapshot(&self) -> OpLatency {
        OpLatency {
            lock_wait: self.lock_wait.snapshot(),
            check: self.check.snapshot(),
        }
    }
}

/// Lock-wait and checking latency distributions for one kind of promise
/// operation. Formerly mean-only totals; now full log-scale histograms
/// (p50/p95/p99/max via [`HistogramSnapshot`]) with total/count accessors
/// kept for callers of the old shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpLatency {
    /// Time spent acquiring the operation's synchronisation point(s) —
    /// the contention cost footprint scoping attacks.
    pub lock_wait: HistogramSnapshot,
    /// Time spent in promise checking (tag release, grant matching,
    /// post-action re-check).
    pub check: HistogramSnapshot,
}

impl OpLatency {
    /// Total nanoseconds spent waiting on sync points.
    pub fn lock_wait_ns(&self) -> u64 {
        self.lock_wait.sum
    }

    /// Number of sync-point acquisitions measured.
    pub fn lock_wait_ops(&self) -> u64 {
        self.lock_wait.count
    }

    /// Total nanoseconds spent in promise checking.
    pub fn check_ns(&self) -> u64 {
        self.check.sum
    }

    /// Number of checking passes measured.
    pub fn check_ops(&self) -> u64 {
        self.check.count
    }
}

#[derive(Debug, Default)]
struct PmMetrics {
    granted: AtomicU64,
    rejected: AtomicU64,
    released: AtomicU64,
    expired_reaped: AtomicU64,
    executions: AtomicU64,
    action_failures: AtomicU64,
    violations_rolled_back: AtomicU64,
    expired_errors: AtomicU64,
    deadlock_retries: AtomicU64,
    grants_deduped: AtomicU64,
    overload_rejections: AtomicU64,
    grant_lat: OpLatencyMetrics,
    release_lat: OpLatencyMetrics,
    execute_lat: OpLatencyMetrics,
    prune_lat: OpLatencyMetrics,
}

/// Snapshot of manager counters for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmMetricsSnapshot {
    /// Promise requests granted.
    pub granted: u64,
    /// Promise requests rejected.
    pub rejected: u64,
    /// Promises explicitly released.
    pub released: u64,
    /// Promises reaped by expiry.
    pub expired_reaped: u64,
    /// Actions executed and committed.
    pub executions: u64,
    /// Actions that failed at the application level.
    pub action_failures: u64,
    /// Actions rolled back for violating an unreleased promise.
    pub violations_rolled_back: u64,
    /// Operations refused because a promise had expired.
    pub expired_errors: u64,
    /// Internal deadlock-victim retries.
    pub deadlock_retries: u64,
    /// Retried grant requests answered from the request-id index instead
    /// of being granted a second time.
    pub grants_deduped: u64,
    /// Requests fail-fasted because the manager was degraded/overloaded.
    pub overload_rejections: u64,
    /// Lock-wait / check latency of grant operations.
    pub grant_lat: OpLatency,
    /// Lock-wait / check latency of release operations.
    pub release_lat: OpLatency,
    /// Lock-wait / check latency of execute operations.
    pub execute_lat: OpLatency,
    /// Lock-wait / check latency of expiry pruning.
    pub prune_lat: OpLatency,
}

impl PmMetricsSnapshot {
    /// Deduplicated grant answers as a fraction of all successful grant
    /// answers (fresh grants + dedup hits): how much retry traffic the
    /// request-id index absorbed. `None` when nothing was granted at all —
    /// never a fabricated zero.
    pub fn dedup_ratio(&self) -> Option<f64> {
        let total = self.granted + self.grants_deduped;
        (total > 0).then(|| self.grants_deduped as f64 / total as f64)
    }
}

/// Short machine-readable cause slug, and the pool when the cause names
/// one, for a grant rejection — used as telemetry counter keys
/// (`pm.reject.<cause>`, `pm.pool.<pool>.rejected`).
fn reject_cause(reason: &RejectReason) -> (&'static str, Option<&PoolId>) {
    match reason {
        RejectReason::InsufficientQuantity { pool, .. } => ("insufficient_quantity", Some(pool)),
        RejectReason::InstanceUnavailable { pool, .. } => ("instance_unavailable", Some(pool)),
        RejectReason::Unsatisfiable { pool } => ("unsatisfiable", Some(pool)),
        RejectReason::UnknownExchange(_) => ("unknown_exchange", None),
        RejectReason::UnknownPool(pool) => ("unknown_pool", Some(pool)),
        RejectReason::UpstreamRejected { pool } => ("upstream_rejected", Some(pool)),
        RejectReason::Overloaded => ("overloaded", None),
    }
}

/// Telemetry registry plus pre-resolved handles for every fixed-name
/// metric the manager's hot path touches. Resolving once at attach time
/// keeps per-operation recording to a handful of relaxed atomic ops —
/// no name formatting, no registry map lookups — which is what keeps the
/// instrumented/uninstrumented throughput gap inside the §12 budget.
/// Per-pool counters are formatted once per pool and cached.
struct PmTel {
    tel: Arc<Telemetry>,
    grant_hist: Arc<Histogram>,
    check_hist: Arc<Histogram>,
    execute_hist: Arc<Histogram>,
    release_hist: Arc<Histogram>,
    granted: Arc<AtomicU64>,
    deduped: Arc<AtomicU64>,
    grant_error: Arc<AtomicU64>,
    retry_deadlock: Arc<AtomicU64>,
    expired: Arc<AtomicU64>,
    compact_runs: Arc<AtomicU64>,
    compact_dropped: Arc<AtomicU64>,
    /// `pm.journal.records` gauge: journal length as of the latest
    /// compaction or reaper tick.
    journal_records: Arc<AtomicU64>,
    /// `pm.pool.<pool>.granted` / `pm.pool.<pool>.rejected` handles.
    pool_counters: RwLock<HashMap<PoolId, PoolCounters>>,
}

/// `(granted, rejected)` counter handles for one pool.
type PoolCounters = (Arc<AtomicU64>, Arc<AtomicU64>);

impl PmTel {
    fn attach(tel: Arc<Telemetry>) -> Arc<Self> {
        Arc::new(Self {
            grant_hist: tel.histogram("pm.grant"),
            check_hist: tel.histogram("pm.check"),
            execute_hist: tel.histogram("pm.execute"),
            release_hist: tel.histogram("pm.release"),
            granted: tel.counter("pm.grant.granted"),
            deduped: tel.counter("pm.grant.deduped"),
            grant_error: tel.counter("pm.grant.error"),
            retry_deadlock: tel.counter("pm.retry.deadlock"),
            expired: tel.counter("pm.expired"),
            compact_runs: tel.counter("pm.compact.runs"),
            compact_dropped: tel.counter("pm.compact.dropped"),
            journal_records: tel.gauge("pm.journal.records"),
            pool_counters: RwLock::new(HashMap::new()),
            tel,
        })
    }

    /// Bumps `pm.pool.<pool>.granted` (or `.rejected`), formatting the
    /// counter names only on each pool's first sighting.
    fn bump_pool(&self, pool: &PoolId, granted: bool) {
        if let Some((g, r)) = self.pool_counters.read().get(pool) {
            (if granted { g } else { r }).fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut cache = self.pool_counters.write();
        let (g, r) = cache.entry(pool.clone()).or_insert_with(|| {
            (
                self.tel.counter(&format!("pm.pool.{pool}.granted")),
                self.tel.counter(&format!("pm.pool.{pool}.rejected")),
            )
        });
        (if granted { g } else { r }).fetch_add(1, Ordering::Relaxed);
    }
}

impl std::ops::Deref for PmTel {
    type Target = Telemetry;

    fn deref(&self) -> &Telemetry {
        &self.tel
    }
}

/// The promise manager.
pub struct PromiseManager {
    rm: Arc<ResourceManager>,
    catalog: RwLock<Catalog>,
    table: Mutex<PromiseTable>,
    clock: Arc<dyn Clock>,
    locking: LockingMode,
    max_duration_ms: u64,
    retry_limit: usize,
    /// What the most recent execute post-check actually looked at; lets
    /// tests and experiments verify footprint scoping narrowed the work.
    last_check_stats: Mutex<CheckerStats>,
    upstreams: RwLock<HashMap<PoolId, Arc<PromiseManager>>>,
    delegations: Mutex<HashMap<PromiseId, UpstreamRefs>>,
    /// Ids of promises reaped by expiry, kept so operations under them can
    /// be answered with the paper's distinct "promise-expired" error (§2)
    /// instead of "unknown promise". *Bounded*: each tombstone carries an
    /// eviction deadline (reap time plus [`Self::tombstone_grace_ms`]) and
    /// is dropped by the next prune after it passes — so the map tracks
    /// recently-expired promises, not all of history.
    expired_tombstones: Mutex<HashMap<PromiseId, u64>>,
    /// Durable journal of promise-table transitions; `None` disables
    /// journalling (the pre-durability behaviour).
    journal: RwLock<Option<Arc<PromiseJournal>>>,
    /// `(client, request)` → granted promise, so a *retried* grant request
    /// (duplicate delivery, reply lost) is answered with the original
    /// promise instead of being granted — and charged — twice.
    request_index: Mutex<HashMap<(ClientId, RequestId), PromiseId>>,
    /// Promises whose allocations a client has observed via
    /// [`PromiseManager::promise`]. Once observed, an allocation is never
    /// moved by re-arrangement — the client may already be acting on the
    /// specific instances it read. Pins are volatile: not journalled, not
    /// part of [`PromiseManager::state_digest`], cleared on recovery, and
    /// dropped when the promise leaves the table. Locking order is always
    /// table → pinned.
    pinned: Mutex<HashSet<PromiseId>>,
    /// Promises granted as *prepared holds* for a cross-shard transaction
    /// ([`PromiseManager::request_prepared`]): resources are reserved like
    /// any grant, but the hold awaits its coordinator's commit/abort.
    /// Unlike pins, prepared marks are durable — journalled as `P`/`C`
    /// records, rebuilt by recovery, and part of
    /// [`PromiseManager::state_digest`]. Locking order is table → prepared.
    prepared: Mutex<HashSet<PromiseId>>,
    /// Administratively degraded: fail-fast all new grant requests.
    degraded: AtomicBool,
    /// Live-promise count above which new grants are refused (0 = no cap).
    overload_limit: AtomicUsize,
    metrics: PmMetrics,
    /// Lifecycle spans + per-stage histograms land here when attached;
    /// `None` (the default) makes every recording site a cheap check.
    telemetry: RwLock<Option<Arc<PmTel>>>,
    /// How long (ms) an expired-promise tombstone outlives its reap before
    /// eviction — the window during which a stale client still gets the
    /// distinct "promise-expired" error.
    tombstone_grace_ms: AtomicU64,
    /// [`PromiseManager::maybe_compact`] compacts only once the journal
    /// holds at least this many records (0 = never auto-compact).
    compaction_threshold: AtomicUsize,
    /// Armed fault-injection point inside [`PromiseManager::compact`];
    /// consumed by the next compaction.
    compaction_crash: Mutex<Option<CompactionCrash>>,
    /// Per-pool *escrow leases*: the slice of a cluster-wide quantity this
    /// manager may grant locally (O'Neil-style escrow applied at the
    /// cluster layer). Empty for standalone managers. Leases are durable —
    /// journalled as absolute-value `L` records, folded into checkpoints,
    /// rebuilt by recovery (which also forces each leased pool's on-hand
    /// quantity back to its lease slice), and part of
    /// [`PromiseManager::state_digest`]. Locking order is table → leases.
    leases: Mutex<BTreeMap<PoolId, u64>>,
}

/// Where an armed [`PromiseManager::compact`] crash fires. Models a
/// process dying mid-compaction: with temp-file-plus-rename semantics the
/// on-disk journal is either the untouched old log or the fully swapped
/// checkpointed one — never a torn mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionCrash {
    /// Die after building the checkpoint but before the swap: recovery
    /// sees the full pre-compaction history.
    BeforeSwap,
    /// Die immediately after the atomic swap: recovery sees the compacted
    /// journal (checkpoint only).
    AfterSwap,
}

/// What [`PromiseManager::compact`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// History lines the checkpoint swap dropped.
    pub dropped: usize,
    /// Live promises captured in the checkpoint.
    pub live: usize,
    /// Of `live`, prepared (in-doubt) holds preserved with their marks.
    pub prepared: usize,
    /// Sequence number assigned to the checkpoint record.
    pub seq: u64,
}

/// What [`PromiseManager::recover`] did, for assertions and logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal entries replayed.
    pub replayed: usize,
    /// Promises live in the rebuilt table (before expiry pruning).
    pub recovered: usize,
    /// Promises that expired while the manager was down and were pruned
    /// (their `Expire` records carry the new generation).
    pub pruned: usize,
    /// Prepared holds recovered *in doubt* — journalled `P` records with no
    /// later commit/release/expiry. Their resources stay reserved until the
    /// coordinator resolves them or their expiry reaps them.
    pub in_doubt: usize,
    /// The journal generation after the bump.
    pub generation: u64,
}

impl PromiseManager {
    /// Creates a manager over `rm` with the given clock.
    pub fn new(rm: Arc<ResourceManager>, clock: Arc<dyn Clock>) -> Self {
        Self {
            rm,
            catalog: RwLock::new(Catalog::new()),
            table: Mutex::new(PromiseTable::new()),
            clock,
            locking: LockingMode::default(),
            max_duration_ms: u64::MAX,
            retry_limit: 64,
            last_check_stats: Mutex::new(CheckerStats::default()),
            upstreams: RwLock::new(HashMap::new()),
            delegations: Mutex::new(HashMap::new()),
            expired_tombstones: Mutex::new(HashMap::new()),
            journal: RwLock::new(None),
            request_index: Mutex::new(HashMap::new()),
            pinned: Mutex::new(HashSet::new()),
            prepared: Mutex::new(HashSet::new()),
            degraded: AtomicBool::new(false),
            overload_limit: AtomicUsize::new(0),
            metrics: PmMetrics::default(),
            telemetry: RwLock::new(None),
            tombstone_grace_ms: AtomicU64::new(DEFAULT_TOMBSTONE_GRACE_MS),
            compaction_threshold: AtomicUsize::new(DEFAULT_COMPACTION_THRESHOLD),
            compaction_crash: Mutex::new(None),
            leases: Mutex::new(BTreeMap::new()),
        }
    }

    /// Attaches a telemetry registry: promise operations record lifecycle
    /// spans (grant/check/release/expire, joining the ambient trace
    /// context) and per-stage latency histograms into it.
    pub fn with_telemetry(self, tel: Arc<Telemetry>) -> Self {
        *self.telemetry.write() = Some(PmTel::attach(tel));
        self
    }

    /// Attaches or detaches the telemetry registry at runtime.
    pub fn set_telemetry(&self, tel: Option<Arc<Telemetry>>) {
        *self.telemetry.write() = tel.map(PmTel::attach);
    }

    /// Attaches a durable journal: every grant/release/expiry/allocation
    /// change is appended, enabling [`PromiseManager::recover`].
    pub fn with_journal(self, journal: Arc<PromiseJournal>) -> Self {
        *self.journal.write() = Some(journal);
        self
    }

    /// Caps the number of live promises; requests beyond the cap are
    /// rejected immediately with [`RejectReason::Overloaded`] (0 = no cap).
    pub fn with_overload_limit(self, limit: usize) -> Self {
        self.overload_limit.store(limit, Ordering::Relaxed);
        self
    }

    /// Runtime setter for the overload cap (0 = no cap) — lets operators
    /// (and the workload plane's admission experiments) tighten or lift
    /// fail-fast admission on a live manager.
    pub fn set_overload_limit(&self, limit: usize) {
        self.overload_limit.store(limit, Ordering::Relaxed);
    }

    /// Sets how long expired-promise tombstones outlive their reap before
    /// eviction. Within the window a stale client gets the paper's
    /// distinct "promise-expired" error; afterwards the id reads as
    /// unknown and the map stays bounded.
    pub fn with_tombstone_grace_ms(self, ms: u64) -> Self {
        self.tombstone_grace_ms.store(ms, Ordering::Relaxed);
        self
    }

    /// Sets the journal length at which [`PromiseManager::maybe_compact`]
    /// triggers a compaction (0 disables auto-compaction).
    pub fn with_compaction_threshold(self, records: usize) -> Self {
        self.compaction_threshold.store(records, Ordering::Relaxed);
        self
    }

    /// Runtime setter for the auto-compaction trigger (0 disables).
    pub fn set_compaction_threshold(&self, records: usize) {
        self.compaction_threshold.store(records, Ordering::Relaxed);
    }

    /// Arms a one-shot crash inside the next [`PromiseManager::compact`]
    /// (fault-injection hook for the crash-restart harnesses).
    pub fn arm_compaction_crash(&self, point: CompactionCrash) {
        *self.compaction_crash.lock() = Some(point);
    }

    /// Number of expired-promise tombstones currently held — boundedness
    /// audits assert this stays proportional to recent expiries, not to
    /// all of history.
    pub fn tombstone_count(&self) -> usize {
        self.expired_tombstones.lock().len()
    }

    /// Caps every granted duration at `ms` (§6: the manager may "offer a
    /// guarantee that expires sooner than the client wished").
    pub fn with_max_duration_ms(mut self, ms: u64) -> Self {
        self.max_duration_ms = ms;
        self
    }

    /// Selects how promise operations serialise (default
    /// [`LockingMode::Footprint`]).
    pub fn with_locking_mode(mut self, mode: LockingMode) -> Self {
        self.locking = mode;
        self
    }

    /// The active locking mode.
    pub fn locking_mode(&self) -> LockingMode {
        self.locking
    }

    /// The underlying resource manager.
    pub fn rm(&self) -> &Arc<ResourceManager> {
        &self.rm
    }

    /// The manager's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<PromiseJournal>> {
        self.journal.read().clone()
    }

    /// Enters or leaves degraded mode. While degraded, new grant requests
    /// are rejected immediately with [`RejectReason::Overloaded`]; checks,
    /// executes, releases and expiry pruning continue normally, so existing
    /// promises are still honored (§9's never-block stance under overload).
    ///
    /// `Relaxed` is deliberate (threaded-runtime atomics audit): the flag
    /// is a standalone admission gate — no other data is published
    /// through it, so there is no happens-before edge to carry. A handler
    /// thread observing the flip a few loads late admits or rejects a
    /// borderline request either way, which the health plane already
    /// tolerates (degraded mode engages on sustained pressure, not a
    /// single op).
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::Relaxed);
    }

    /// True if the manager is administratively degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Registers a pool schema (creates its backing tables).
    pub fn register_pool(&self, schema: PoolSchema) {
        self.catalog.write().register(&self.rm, schema);
    }

    /// Routes promise requests for `pool` to an upstream manager — the
    /// §5 *delegation* technique ("promises are made that rely on the
    /// promises of third parties").
    pub fn delegate_pool(&self, pool: impl Into<PoolId>, upstream: Arc<PromiseManager>) {
        self.upstreams.write().insert(pool.into(), upstream);
    }

    /// Re-points an existing delegation at a replacement upstream manager
    /// — the fail-over case where the upstream's leader died and a warm
    /// follower was promoted behind a new manager instance. Backing
    /// promise ids survive journal replay unchanged, so live delegation
    /// chains stay valid: every stored upstream reference that pointed at
    /// the displaced manager is rewritten to the replacement, keeping its
    /// promise id, and later releases cascade to the promoted node.
    pub fn rebind_upstream(&self, pool: impl Into<PoolId>, upstream: Arc<PromiseManager>) {
        let old = self
            .upstreams
            .write()
            .insert(pool.into(), Arc::clone(&upstream));
        let Some(old) = old else { return };
        let mut delegations = self.delegations.lock();
        for refs in delegations.values_mut() {
            for (manager, _) in refs.iter_mut() {
                if Arc::ptr_eq(manager, &old) {
                    *manager = Arc::clone(&upstream);
                }
            }
        }
    }

    /// Sets the quantity on hand of a quantity pool (setup/admin).
    pub fn seed_quantity(&self, pool: impl Into<PoolId>, qty: u64) -> Result<(), PromiseError> {
        let pool = pool.into();
        let catalog = self.catalog.read();
        let txn = self.rm.begin();
        match catalog.set_quantity(&self.rm, &txn, &pool, qty) {
            Ok(()) => {
                self.rm.commit(txn)?;
                Ok(())
            }
            Err(e) => Err(self.abort_with(txn, e)),
        }
    }

    /// Adds an available instance to an instance pool (setup/admin).
    pub fn seed_instance(
        &self,
        pool: impl Into<PoolId>,
        id: impl Into<InstanceId>,
        properties: Record,
    ) -> Result<(), PromiseError> {
        let pool = pool.into();
        let id = id.into();
        let catalog = self.catalog.read();
        let txn = self.rm.begin();
        match catalog.add_instance(&self.rm, &txn, &pool, &id, properties) {
            Ok(()) => {
                self.rm.commit(txn)?;
                Ok(())
            }
            Err(e) => Err(self.abort_with(txn, e)),
        }
    }

    // ==================================================================
    // Escrow leases
    // ==================================================================

    /// Installs this manager's escrow lease for `pool` at an absolute
    /// quantity, setting the pool's on-hand quantity to the lease slice
    /// (setup/admin: a cluster partitions a pool's total across shards).
    /// The pool's schema must already be registered. Journalled as an `L`
    /// record so the split survives crash/restart.
    pub fn install_lease(&self, pool: impl Into<PoolId>, qty: u64) -> Result<(), PromiseError> {
        let pool = pool.into();
        let catalog = self.catalog.read();
        let txn = self.rm.begin();
        match catalog.set_quantity(&self.rm, &txn, &pool, qty) {
            Ok(()) => {
                let tbl = self.table.lock();
                self.leases.lock().insert(pool.clone(), qty);
                self.journal_append(JournalOp::Lease { pool, qty });
                drop(tbl);
                self.rm.commit(txn)?;
                Ok(())
            }
            Err(e) => Err(self.abort_with(txn, e)),
        }
    }

    /// Withdraws up to `want` units of lease *headroom* (lease minus
    /// quantity promised) from this manager, shrinking both the lease and
    /// the pool's on-hand quantity. Returns how much was actually moved —
    /// clamped to the available headroom, so a withdraw can never strand
    /// already-promised units. Runs under the pool's promise-ops
    /// synchronisation point, serialising against concurrent grants.
    ///
    /// A rebalance is withdraw-then-deposit: the donor's `L` record lands
    /// before the receiver's, so a crash between them loses headroom
    /// (recoverable by a later top-up) but never mints it.
    pub fn lease_withdraw(&self, pool: impl Into<PoolId>, want: u64) -> Result<u64, PromiseError> {
        let pool = pool.into();
        if want == 0 {
            return Ok(0);
        }
        self.with_retries(|| {
            let txn = self.rm.begin();
            if let Err(e) = self.lock_lease_ops(&txn, &pool) {
                return Err(self.abort_with(txn, e.into()));
            }
            let tbl = self.table.lock();
            let lease = self.leases.lock().get(&pool).copied().unwrap_or(0);
            let headroom = lease.saturating_sub(tbl.promised_qty(&pool));
            let moved = want.min(headroom);
            if moved == 0 {
                drop(tbl);
                return self.abort_then(txn, 0);
            }
            let qty = lease - moved;
            let catalog = self.catalog.read();
            if let Err(e) = catalog.set_quantity(&self.rm, &txn, &pool, qty) {
                drop(tbl);
                return Err(self.abort_with(txn, e));
            }
            drop(catalog);
            self.leases.lock().insert(pool.clone(), qty);
            self.journal_append(JournalOp::Lease {
                pool: pool.clone(),
                qty,
            });
            drop(tbl);
            self.rm.commit(txn)?;
            Ok(moved)
        })
    }

    /// Deposits `delta` units of lease headroom into this manager, growing
    /// both the lease and the pool's on-hand quantity. Returns the new
    /// lease. The caller (the cluster rebalancer) is responsible for only
    /// depositing units previously withdrawn from another shard.
    pub fn lease_deposit(&self, pool: impl Into<PoolId>, delta: u64) -> Result<u64, PromiseError> {
        let pool = pool.into();
        self.with_retries(|| {
            let txn = self.rm.begin();
            if let Err(e) = self.lock_lease_ops(&txn, &pool) {
                return Err(self.abort_with(txn, e.into()));
            }
            let tbl = self.table.lock();
            let lease = self.leases.lock().get(&pool).copied().unwrap_or(0);
            let qty = lease.saturating_add(delta);
            let catalog = self.catalog.read();
            if let Err(e) = catalog.set_quantity(&self.rm, &txn, &pool, qty) {
                drop(tbl);
                return Err(self.abort_with(txn, e));
            }
            drop(catalog);
            self.leases.lock().insert(pool.clone(), qty);
            self.journal_append(JournalOp::Lease {
                pool: pool.clone(),
                qty,
            });
            drop(tbl);
            self.rm.commit(txn)?;
            Ok(qty)
        })
    }

    /// This manager's escrow lease for `pool`, if one is installed.
    pub fn lease_of(&self, pool: impl Into<PoolId>) -> Option<u64> {
        self.leases.lock().get(&pool.into()).copied()
    }

    /// All escrow leases held by this manager (sorted by pool).
    pub fn leases(&self) -> Vec<(PoolId, u64)> {
        self.leases
            .lock()
            .iter()
            .map(|(p, q)| (p.clone(), *q))
            .collect()
    }

    /// Unpromised lease headroom for `pool`: lease minus quantity promised
    /// (0 when no lease is installed).
    pub fn lease_headroom(&self, pool: impl Into<PoolId>) -> u64 {
        let pool = pool.into();
        let tbl = self.table.lock();
        let lease = self.leases.lock().get(&pool).copied().unwrap_or(0);
        lease.saturating_sub(tbl.promised_qty(&pool))
    }

    /// Quantity promised against `pool` by live promises.
    pub fn promised_qty(&self, pool: impl Into<PoolId>) -> u64 {
        self.table.lock().promised_qty(&pool.into())
    }

    /// The lease ops' synchronisation point: the same one grants over the
    /// pool take, so lease moves serialise with grant/release traffic.
    fn lock_lease_ops(&self, txn: &Txn, pool: &PoolId) -> Result<(), RmError> {
        match self.locking {
            LockingMode::Global => self.rm.lock_exclusive(txn, PM_OPS),
            LockingMode::Footprint => {
                let names = vec![format!("{PM_OPS}/{pool}")];
                self.rm.lock_exclusive_many(txn, &names)
            }
        }
    }

    // ==================================================================
    // Promise operations
    // ==================================================================

    /// Requests a promise (§6 `<promise-request>`). All predicates are
    /// granted atomically or the whole request is rejected; promises in
    /// `spec.exchange` are released atomically iff the grant succeeds.
    /// Predicates on pools registered with
    /// [`PromiseManager::delegate_pool`] are backed by promises obtained
    /// from the upstream manager, released again if the overall request
    /// cannot be granted.
    pub fn request(&self, spec: PromiseRequestSpec) -> Result<PromiseResponse, PromiseError> {
        self.request_with(spec, false)
    }

    /// Requests a *prepared hold*: the grant path runs exactly as in
    /// [`PromiseManager::request`] — immediate reject if unfulfillable,
    /// resources reserved if not — but the promise is journalled as a `P`
    /// record and marked prepared, awaiting a cross-shard coordinator's
    /// [`PromiseManager::commit_prepared`] or
    /// [`PromiseManager::abort_prepared`]. A prepared hold reserves
    /// resources against every other request (so a committed cross-shard
    /// grant can never be oversold) and expires like any promise (so a
    /// coordinator that dies never leaks capacity forever).
    pub fn request_prepared(
        &self,
        spec: PromiseRequestSpec,
    ) -> Result<PromiseResponse, PromiseError> {
        self.request_with(spec, true)
    }

    fn request_with(
        &self,
        spec: PromiseRequestSpec,
        prepared: bool,
    ) -> Result<PromiseResponse, PromiseError> {
        // One registry read up front, cloned out of the lock, so the hot
        // path acquires the telemetry lock at most once per request and
        // allocates nothing. Per-pool attribution and exchanged-promise
        // lifecycle events happen on the fresh-grant branch inside
        // `try_grant_local`, where the spec is still in scope — they are
        // per-grant costs, not per-request costs.
        let tel = self.telemetry.read().clone();
        let Some(tel) = tel else {
            return self.request_inner(spec, prepared).map(|(resp, _)| resp);
        };
        let started = Instant::now();
        let result = self.request_inner(spec, prepared);
        let dur = started.elapsed();
        tel.grant_hist.record_duration(dur);
        // Spans are trace artifacts (DESIGN §12): a clean grant outside
        // any ambient trace joins nothing downstream, and the journal —
        // not the ring — is lifecycle ground truth, so it is elided.
        // Failures are always recorded for diagnosis.
        let traced = current_trace().is_some();
        match &result {
            Ok((resp, deduped)) => match &resp.decision {
                PromiseDecision::Granted { promise, .. } if *deduped => {
                    tel.deduped.fetch_add(1, Ordering::Relaxed);
                    if traced {
                        tel.span_since(SpanKind::PmGrant, started)
                            .promise(promise.0)
                            .outcome(SpanOutcome::Deduped)
                            .finish_with(dur);
                    }
                }
                PromiseDecision::Granted { promise, .. } => {
                    tel.granted.fetch_add(1, Ordering::Relaxed);
                    if traced {
                        tel.span_since(SpanKind::PmGrant, started)
                            .promise(promise.0)
                            .finish_with(dur);
                    }
                }
                PromiseDecision::Rejected { reason } => {
                    let (cause, pool) = reject_cause(reason);
                    tel.incr(&format!("pm.reject.{cause}"));
                    if let Some(pool) = pool {
                        tel.bump_pool(pool, false);
                    }
                    tel.span_since(SpanKind::PmGrant, started)
                        .outcome(SpanOutcome::Rejected)
                        .note(cause)
                        .finish_with(dur);
                }
            },
            Err(e) => {
                tel.grant_error.fetch_add(1, Ordering::Relaxed);
                tel.span_since(SpanKind::PmGrant, started)
                    .outcome(SpanOutcome::Error)
                    .note(e.to_string())
                    .finish_with(dur);
            }
        }
        result.map(|(resp, _)| resp)
    }

    /// The grant path behind [`PromiseManager::request`]. The boolean in
    /// the success value is true when the response was answered from the
    /// request-id index (a deduplicated retry) rather than freshly granted.
    fn request_inner(
        &self,
        spec: PromiseRequestSpec,
        prepared: bool,
    ) -> Result<(PromiseResponse, bool), PromiseError> {
        self.prune_expired()?;

        // Duplicate-request fast path: a retried grant (lost reply, network
        // duplicate) whose original succeeded is answered with the original
        // promise — before delegation, so no duplicate upstream grants are
        // acquired either. The authoritative re-check happens again inside
        // `try_grant_local` under the footprint locks.
        if let Some(resp) = self.dedup_hit(&spec) {
            self.metrics.grants_deduped.fetch_add(1, Ordering::Relaxed);
            return Ok((resp, true));
        }

        // Degraded/overload fail-fast (after dedup: answering a retry from
        // the index adds no load). New grants are the only thing refused.
        let over_limit = {
            let limit = self.overload_limit.load(Ordering::Relaxed);
            limit > 0 && self.table.lock().len() >= limit
        };
        if self.degraded.load(Ordering::Relaxed) || over_limit {
            self.metrics
                .overload_rejections
                .fetch_add(1, Ordering::Relaxed);
            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Ok((
                PromiseResponse {
                    correlation: spec.request,
                    decision: PromiseDecision::Rejected {
                        reason: RejectReason::Overloaded,
                    },
                },
                false,
            ));
        }

        // Split predicates between local pools and delegated pools.
        let upstream_map = self.upstreams.read().clone();
        let mut local = Vec::new();
        let mut remote: HashMap<PoolId, Vec<Predicate>> = HashMap::new();
        for p in &spec.predicates {
            match upstream_map.get(p.pool()) {
                Some(_) => remote.entry(p.pool().clone()).or_default().push(p.clone()),
                None => local.push(p.clone()),
            }
        }

        // Acquire upstream promises first (delegation); compensate on any
        // later failure so the whole request stays atomic to the caller.
        let mut upstream_refs: UpstreamRefs = Vec::new();
        let mut upstream_duration = u64::MAX;
        let mut remote_pools: Vec<_> = remote.into_iter().collect();
        remote_pools.sort_by(|a, b| a.0.cmp(&b.0));
        for (pool, preds) in remote_pools {
            let upstream = upstream_map.get(&pool).expect("partitioned above");
            let mut up_spec = PromiseRequestSpec::new(
                RequestId(format!("{}::delegated::{pool}", spec.request)),
                spec.client.clone(),
            )
            .duration_ms(spec.duration_ms);
            up_spec.predicates = preds;
            match upstream.request(up_spec) {
                Ok(resp) => match resp.decision {
                    PromiseDecision::Granted {
                        promise,
                        expires_at,
                    } => {
                        // Upstream clocks are independent; bound our own
                        // expiry by the *duration* the upstream granted.
                        let up_dur = expires_at.saturating_sub(upstream.clock.now_ms());
                        upstream_duration = upstream_duration.min(up_dur);
                        upstream_refs.push((Arc::clone(upstream), promise));
                    }
                    PromiseDecision::Rejected { .. } => {
                        self.release_refs(&upstream_refs);
                        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                        return Ok((
                            PromiseResponse {
                                correlation: spec.request,
                                decision: PromiseDecision::Rejected {
                                    reason: RejectReason::UpstreamRejected { pool },
                                },
                            },
                            false,
                        ));
                    }
                },
                Err(e) => {
                    self.release_refs(&upstream_refs);
                    return Err(e);
                }
            }
        }

        let effective_duration = spec.duration_ms.min(upstream_duration);
        let result = self.with_retries(|| {
            self.try_grant_local(&spec, local.clone(), effective_duration, prepared)
        });
        match &result {
            Ok((resp, deduped)) => match &resp.decision {
                PromiseDecision::Granted { promise, .. } if *deduped => {
                    // The original grant already owns its delegation refs;
                    // the ones acquired for this retry are surplus.
                    let _ = promise;
                    self.metrics.grants_deduped.fetch_add(1, Ordering::Relaxed);
                    self.release_refs(&upstream_refs);
                }
                PromiseDecision::Granted { promise, .. } => {
                    self.metrics.granted.fetch_add(1, Ordering::Relaxed);
                    if !upstream_refs.is_empty() {
                        self.delegations
                            .lock()
                            .insert(*promise, std::mem::take(&mut upstream_refs));
                    }
                }
                PromiseDecision::Rejected { .. } => {
                    self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    self.release_refs(&upstream_refs);
                }
            },
            Err(_) => self.release_refs(&upstream_refs),
        }
        result
    }

    /// Releases a promise (§6 promise release). Cascades to delegated
    /// upstream promises.
    pub fn release(&self, id: PromiseId) -> Result<(), PromiseError> {
        let started = Instant::now();
        let result = self.with_retries(|| self.try_release(id));
        if let Some(tel) = self.telemetry.read().as_deref() {
            let dur = started.elapsed();
            tel.release_hist.record_duration(dur);
            match &result {
                // Clean untraced releases are elided like clean untraced
                // grants (DESIGN §12); failures always get a span.
                Ok(()) => {
                    if current_trace().is_some() {
                        tel.span_since(SpanKind::PmRelease, started)
                            .promise(id.0)
                            .finish_with(dur);
                    }
                }
                Err(e) => tel
                    .span_since(SpanKind::PmRelease, started)
                    .promise(id.0)
                    .outcome(SpanOutcome::Error)
                    .note(e.to_string())
                    .finish_with(dur),
            }
        }
        result?;
        self.cascade_release(id);
        self.metrics.released.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Commits a prepared hold: the promise becomes an ordinary grant
    /// (journalled as a `C` record). Idempotent — committing an
    /// already-committed promise returns `Ok(false)`, so a coordinator's
    /// retried commit (lost ack) is harmless. Committing a hold that has
    /// already expired or was never granted fails, letting the coordinator
    /// treat the transaction as aborted.
    pub fn commit_prepared(&self, id: PromiseId) -> Result<bool, PromiseError> {
        let tbl = self.table.lock();
        if tbl.get(id).is_none() {
            return Err(if self.expired_tombstones.lock().contains_key(&id) {
                PromiseError::PromiseExpired(id)
            } else {
                PromiseError::UnknownPromise(id)
            });
        }
        let mut prepared = self.prepared.lock();
        if !prepared.remove(&id) {
            return Ok(false);
        }
        self.journal_append(JournalOp::CommitPrepared(id));
        Ok(true)
    }

    /// Aborts a prepared hold, releasing its resources. Idempotent — a
    /// hold already released, expired, or never granted is reported as
    /// `Ok(false)`, so a coordinator's retried abort is harmless.
    pub fn abort_prepared(&self, id: PromiseId) -> Result<bool, PromiseError> {
        match self.release(id) {
            Ok(()) => Ok(true),
            Err(PromiseError::UnknownPromise(_) | PromiseError::PromiseExpired(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// True if `id` is a prepared hold still awaiting its coordinator's
    /// decision (in doubt).
    pub fn is_prepared(&self, id: PromiseId) -> bool {
        self.prepared.lock().contains(&id)
    }

    /// The prepared holds still awaiting a decision, sorted by id — the
    /// in-doubt set a recovering coordinator must resolve.
    pub fn prepared_ids(&self) -> Vec<PromiseId> {
        let mut ids: Vec<PromiseId> = self.prepared.lock().iter().copied().collect();
        ids.sort();
        ids
    }

    /// Age in clock milliseconds of the oldest prepared hold still in
    /// doubt, or `None` when no hold is in doubt. This is the health
    /// plane's in-doubt-age signal: a coordinator stuck (or dead) between
    /// prepare and resolution shows up as this value climbing.
    pub fn oldest_in_doubt_age_ms(&self) -> Option<u64> {
        // Locks taken one at a time (prepared, then table) — never nested,
        // matching the table → prepared order used on the grant path.
        let ids: Vec<PromiseId> = self.prepared.lock().iter().copied().collect();
        if ids.is_empty() {
            return None;
        }
        let now = self.clock.now_ms();
        let tbl = self.table.lock();
        ids.iter()
            .filter_map(|id| tbl.get(*id).map(|rec| now.saturating_sub(rec.granted_at)))
            .max()
    }

    /// The live promise held by `(client, request)`, if any. A recovering
    /// coordinator that lost a prepare reply resolves the hold by request
    /// key instead of promise id.
    pub fn promise_for_request(&self, client: &ClientId, request: &RequestId) -> Option<PromiseId> {
        let key = (client.clone(), request.clone());
        let id = *self.request_index.lock().get(&key)?;
        let tbl = self.table.lock();
        let rec = tbl.get(id)?;
        if !rec.is_live(self.clock.now_ms()) {
            return None;
        }
        Some(id)
    }

    /// Atomically upgrades or weakens existing promises: grants `spec`'s
    /// predicates and releases `old` iff the grant succeeds; otherwise the
    /// old promises are retained unchanged (§4). Sugar over
    /// [`PromiseManager::request`] with `exchange`.
    pub fn modify(
        &self,
        old: &[PromiseId],
        mut spec: PromiseRequestSpec,
    ) -> Result<PromiseResponse, PromiseError> {
        spec.exchange.extend_from_slice(old);
        self.request(spec)
    }

    /// Executes an application action inside one ACID transaction, then
    /// re-checks every live promise; if the action's state changes would
    /// violate a promise it is not releasing, the whole action is rolled
    /// back (§8 "Executing Actions"). Promises listed in `env` with
    /// [`crate::ReleaseOption::ReleaseAfter`] are released atomically with
    /// a successful action (§4's release+action atomic unit).
    ///
    /// The closure may be re-run if its transaction is chosen as a
    /// deadlock victim; all its effects are transactional, so retries are
    /// invisible to the application.
    pub fn execute<R>(
        &self,
        env: &Environment,
        mut action: impl FnMut(&ResourceManager, &Txn) -> Result<R, ActionError>,
    ) -> Result<R, PromiseError> {
        self.prune_expired()?;
        let started = Instant::now();
        let result = self.with_retries(|| self.try_execute(env, &mut action, false));
        self.note_execute(env, started, result.as_ref().err());
        let out = result?;
        for id in env.releases() {
            self.cascade_release(id);
        }
        self.metrics.executions.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Like [`PromiseManager::execute`], but additionally *enforces*
    /// promise scoping (§2): the action may only modify promise-protected
    /// pools that its environment's promises actually cover. Writes to
    /// tables that are not pool-backed (order logs etc.) are always
    /// allowed. A write outside the scope rolls the action back with
    /// [`PromiseError::ScopeViolation`].
    pub fn execute_scoped<R>(
        &self,
        env: &Environment,
        mut action: impl FnMut(&ResourceManager, &Txn) -> Result<R, crate::error::ActionError>,
    ) -> Result<R, PromiseError> {
        self.prune_expired()?;
        let started = Instant::now();
        let result = self.with_retries(|| self.try_execute(env, &mut action, true));
        self.note_execute(env, started, result.as_ref().err());
        let out = result?;
        for id in env.releases() {
            self.cascade_release(id);
        }
        self.metrics.executions.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Records the `pm.execute` histogram and span — plus a `pm.release`
    /// lifecycle event per promise released with the action — when
    /// telemetry is attached. Rollbacks for promise violations are tagged
    /// with the violated promise.
    fn note_execute(&self, env: &Environment, started: Instant, err: Option<&PromiseError>) {
        let guard = self.telemetry.read();
        let Some(tel) = guard.as_deref() else { return };
        let dur = started.elapsed();
        tel.execute_hist.record_duration(dur);
        match err {
            None => {
                // A clean execute outside any ambient trace joins nothing
                // an auditor could correlate — the journal carries the
                // release ground truth and the histogram above already has
                // the latency sample — so only traced executions earn ring
                // slots (DESIGN §12).
                if current_trace().is_some() {
                    for id in env.releases() {
                        tel.event(SpanKind::PmRelease, id.0);
                    }
                    tel.span_since(SpanKind::PmExecute, started)
                        .finish_with(dur);
                }
            }
            Some(PromiseError::ViolationRolledBack { violated, detail }) => tel
                .span_since(SpanKind::PmExecute, started)
                .promise(violated.0)
                .outcome(SpanOutcome::RolledBack)
                .note(detail.clone())
                .finish_with(dur),
            Some(e) => tel
                .span_since(SpanKind::PmExecute, started)
                .outcome(SpanOutcome::Error)
                .note(e.to_string())
                .finish_with(dur),
        }
    }

    /// Reaps expired promises, freeing their tag allocations. Called
    /// lazily by every operation; callable explicitly (e.g. on a timer).
    /// Returns the number reaped.
    pub fn prune_expired(&self) -> Result<usize, PromiseError> {
        let reaped = self.with_retries(|| self.try_prune())?;
        {
            let now = self.clock.now_ms();
            let evict_at = now.saturating_add(self.tombstone_grace_ms.load(Ordering::Relaxed));
            let mut tombs = self.expired_tombstones.lock();
            for rec in &reaped {
                tombs.insert(rec.id, evict_at);
            }
            // Evict tombstones whose grace window has passed, so the map
            // tracks recent expiries instead of growing with history.
            tombs.retain(|_, at| *at > now);
        }
        for rec in &reaped {
            self.cascade_release(rec.id);
        }
        if !reaped.is_empty() {
            if let Some(tel) = self.telemetry.read().as_deref() {
                for rec in &reaped {
                    tel.event(SpanKind::PmExpire, rec.id.0);
                }
                tel.expired
                    .fetch_add(reaped.len() as u64, Ordering::Relaxed);
            }
        }
        self.metrics
            .expired_reaped
            .fetch_add(reaped.len() as u64, Ordering::Relaxed);
        Ok(reaped.len())
    }

    /// Rebuilds the promise table, per-pool indexes, quantity aggregates
    /// and request-id index from `journal` after a (simulated) crash, then
    /// installs the journal for continued appends.
    ///
    /// Replay is *idempotent*: `Grant` inserts (replacing any stale copy),
    /// `Release`/`Expire` of an absent id is a no-op, and `Allocations`
    /// rewrites in place — so replaying the same journal twice yields the
    /// same table. Recovery first bumps the journal generation; promises
    /// that expired while the manager was down are pruned immediately and
    /// their `Expire` records carry the new generation, so a second
    /// recovery over the extended journal never re-admits them.
    pub fn recover(&self, journal: Arc<PromiseJournal>) -> Result<RecoveryReport, PromiseError> {
        let generation = journal.bump_generation();
        let entries = journal
            .entries()
            .map_err(|e| PromiseError::JournalCorrupt(e.to_string()))?;
        let replayed = entries.len();

        let mut table = PromiseTable::new();
        let mut tombstones: HashSet<PromiseId> = HashSet::new();
        let mut prepared: HashSet<PromiseId> = HashSet::new();
        let mut lease_map: BTreeMap<PoolId, u64> = BTreeMap::new();
        let mut max_id = 0u64;
        for entry in entries {
            match entry.op {
                JournalOp::Grant(rec) => {
                    max_id = max_id.max(rec.id.0);
                    tombstones.remove(&rec.id);
                    prepared.remove(&rec.id);
                    table.insert(rec);
                }
                JournalOp::Prepared(rec) => {
                    max_id = max_id.max(rec.id.0);
                    tombstones.remove(&rec.id);
                    prepared.insert(rec.id);
                    table.insert(rec);
                }
                JournalOp::CommitPrepared(id) => {
                    prepared.remove(&id);
                }
                JournalOp::Release(id) => {
                    table.remove(id);
                    prepared.remove(&id);
                }
                JournalOp::Expire(id) => {
                    table.remove(id);
                    prepared.remove(&id);
                    tombstones.insert(id);
                }
                JournalOp::Allocations { id, allocations } => {
                    if let Some(rec) = table.get_mut(id) {
                        rec.allocations = allocations;
                    }
                }
                JournalOp::Lease { pool, qty } => {
                    // Absolute values: last write wins, exactly the state
                    // the pre-crash manager last made durable.
                    lease_map.insert(pool, qty);
                }
                JournalOp::Checkpoint(cp) => {
                    // A checkpoint is a full snapshot of live state: reset
                    // the fold and continue replay from it. Everything
                    // before it is compacted-away history.
                    table = PromiseTable::new();
                    tombstones.clear();
                    prepared.clear();
                    lease_map = cp.leases.into_iter().collect();
                    max_id = max_id.max(cp.next_id);
                    for item in cp.live {
                        max_id = max_id.max(item.record.id.0);
                        if item.prepared {
                            prepared.insert(item.record.id);
                        }
                        table.insert(item.record);
                    }
                }
            }
        }
        table.bump_next_to(max_id);
        let recovered = table.len();

        let mut index: HashMap<(ClientId, RequestId), PromiseId> = HashMap::new();
        for rec in table.all() {
            index.insert((rec.client.clone(), rec.request.clone()), rec.id);
        }

        // Install rebuilt state. Locks are taken one at a time — recovery
        // runs before the manager serves traffic, so no consistency window
        // matters here.
        *self.table.lock() = table;
        *self.request_index.lock() = index;
        // Observation pins are volatile: any pre-crash observer's session
        // is gone, so recovered promises re-arrange freely again.
        self.pinned.lock().clear();
        *self.prepared.lock() = prepared;
        // Replayed Expire records carry no wall-clock, so recovered
        // tombstones restart their grace window at recovery time.
        let evict_at = self
            .clock
            .now_ms()
            .saturating_add(self.tombstone_grace_ms.load(Ordering::Relaxed));
        self.expired_tombstones
            .lock()
            .extend(tombstones.into_iter().map(|id| (id, evict_at)));
        *self.journal.write() = Some(journal);

        // The journal is the durable truth for escrow leases: force each
        // leased pool's on-hand quantity back to its lease slice, healing
        // any divergence from a crash between the RM write and the `L`
        // append. Pools whose schema the caller has not re-registered are
        // skipped (schema registration is not journalled).
        {
            let catalog = self.catalog.read();
            for (pool, qty) in &lease_map {
                if !catalog.contains(pool) {
                    continue;
                }
                let txn = self.rm.begin();
                match catalog.set_quantity(&self.rm, &txn, pool, *qty) {
                    Ok(()) => self.rm.commit(txn)?,
                    Err(e) => return Err(self.abort_with(txn, e)),
                }
            }
        }
        *self.leases.lock() = lease_map;

        // Reap promises that expired while the manager was down; their
        // Expire entries are appended under the new generation and their
        // ids become tombstones, so post-recovery operations under them get
        // the paper's "promise-expired" error, never "unknown promise".
        // Surviving prepared marks (minus any the prune just reaped) are
        // the in-doubt holds: their resources stay reserved — no other
        // client can be oversold against them — until the coordinator
        // commits/aborts them or their expiry reaps them.
        let pruned = self.prune_expired()?;
        Ok(RecoveryReport {
            replayed,
            recovered,
            pruned,
            in_doubt: self.prepared.lock().len(),
            generation,
        })
    }

    /// Compacts the attached journal: captures the live table, prepared
    /// marks, and id high-water into one checkpoint record and atomically
    /// swaps it in for the accumulated history
    /// ([`PromiseJournal::install_checkpoint`]). The snapshot is built and
    /// swapped under the table lock — the same lock every journal append
    /// holds — so the checkpoint is a consistent cut and no concurrent
    /// transition can fall between snapshot and swap. Recovery replays the
    /// checkpoint plus whatever suffix accumulates after it, making
    /// restart cost O(live promises), not O(history). `state_digest()` is
    /// byte-identical across compact → crash → recover.
    ///
    /// Returns `Ok(None)` when no journal is attached; returns
    /// [`PromiseError::CompactionInterrupted`] when an armed crash hook
    /// fires ([`PromiseManager::arm_compaction_crash`]).
    pub fn compact(&self) -> Result<Option<CompactionReport>, PromiseError> {
        let journal = match self.journal.read().as_ref() {
            Some(j) => Arc::clone(j),
            None => return Ok(None),
        };
        let started = Instant::now();
        // Crate-wide lock order: table → prepared.
        let table = self.table.lock();
        let prepared_set = self.prepared.lock();
        let mut live = Vec::with_capacity(table.len());
        let mut prepared_count = 0usize;
        for record in table.all() {
            let prepared = prepared_set.contains(&record.id);
            prepared_count += usize::from(prepared);
            live.push(CheckpointRecord { prepared, record });
        }
        drop(prepared_set);
        // Canonical order keeps the checkpoint line deterministic for a
        // given table state (table iteration order is not).
        live.sort_by_key(|item| item.record.id);
        let state = CheckpointState {
            next_id: table.id_high_water(),
            live,
            // BTreeMap iteration is sorted, keeping the line deterministic.
            leases: self
                .leases
                .lock()
                .iter()
                .map(|(p, q)| (p.clone(), *q))
                .collect(),
        };
        let crash = self.compaction_crash.lock().take();
        if crash == Some(CompactionCrash::BeforeSwap) {
            // Modeled crash while writing the checkpoint temp file: the
            // real journal was never touched.
            return Err(PromiseError::CompactionInterrupted);
        }
        let stats = journal.install_checkpoint(state);
        let report = CompactionReport {
            dropped: stats.dropped,
            live: table.len(),
            prepared: prepared_count,
            seq: stats.seq,
        };
        drop(table);
        if crash == Some(CompactionCrash::AfterSwap) {
            // Modeled crash right after the rename: the swap is durable.
            return Err(PromiseError::CompactionInterrupted);
        }
        if let Some(tel) = self.telemetry.read().as_deref() {
            tel.compact_runs.fetch_add(1, Ordering::Relaxed);
            tel.compact_dropped
                .fetch_add(report.dropped as u64, Ordering::Relaxed);
            tel.journal_records
                .store(journal.len() as u64, Ordering::Relaxed);
            tel.span_since(SpanKind::PmCompact, started)
                .note(format!("dropped={} live={}", report.dropped, report.live))
                .finish();
        }
        Ok(Some(report))
    }

    /// Compacts when the journal has outgrown its worth as raw history:
    /// at least [`PromiseManager::with_compaction_threshold`] records long
    /// *and* several times larger than the live table (a journal that is
    /// mostly live promises would shrink little). Cheap when nothing is
    /// due — the expiry reaper calls this on its cadence. Also refreshes
    /// the `pm.journal.records` gauge.
    pub fn maybe_compact(&self) -> Result<Option<CompactionReport>, PromiseError> {
        let journal_len = match self.journal.read().as_ref() {
            Some(j) => j.len(),
            None => return Ok(None),
        };
        if let Some(tel) = self.telemetry.read().as_deref() {
            tel.journal_records
                .store(journal_len as u64, Ordering::Relaxed);
        }
        let threshold = self.compaction_threshold.load(Ordering::Relaxed);
        if threshold == 0 || journal_len < threshold {
            return Ok(None);
        }
        if journal_len < 4 * (self.live_count() + 1) {
            return Ok(None);
        }
        self.compact()
    }

    // ==================================================================
    // Introspection
    // ==================================================================

    /// Number of promises currently in the table.
    pub fn live_count(&self) -> usize {
        self.table.lock().len()
    }

    /// A copy of a promise's record, if present.
    ///
    /// Reading a record *pins* its allocations: the returned instances
    /// will not be moved by later re-arrangements (the caller may act on
    /// exactly what it read — e.g. book the room the manager allocated).
    /// The pin is taken under the table lock, atomically with the read, so
    /// a re-arrangement in flight either already shows in the returned
    /// record or detects the pin at write-back and recomputes. Pins drop
    /// when the promise is released, expired, or exchanged. Unobserved
    /// promises keep the paper's full §5 re-arrangement freedom.
    pub fn promise(&self, id: PromiseId) -> Option<PromiseRecord> {
        let tbl = self.table.lock();
        let rec = tbl.get(id).cloned()?;
        if !rec.allocations.is_empty() {
            self.pinned.lock().insert(id);
        }
        Some(rec)
    }

    /// A copy of a promise's record without pinning its allocations —
    /// for audits and introspection that will never act on the specific
    /// instances (re-arrangement stays free afterwards).
    pub fn peek_promise(&self, id: PromiseId) -> Option<PromiseRecord> {
        self.table.lock().get(id).cloned()
    }

    /// Per-pool totals of quantity promised by live promises (sorted by
    /// pool). An external audit can cross-check these against quantities
    /// on hand: promised exceeding on-hand is a promise violation.
    pub fn promised_quantities(&self) -> Vec<(PoolId, u64)> {
        self.table.lock().qty_aggregates()
    }

    /// The quantity on hand in a quantity pool (audit/introspection).
    pub fn quantity_on_hand(&self, pool: impl Into<PoolId>) -> Result<u64, PromiseError> {
        let pool = pool.into();
        let catalog = self.catalog.read();
        let txn = self.rm.begin();
        match catalog.quantity(&self.rm, &txn, &pool) {
            Ok(q) => self.abort_then(txn, q),
            Err(e) => Err(self.abort_with(txn, e)),
        }
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> PmMetricsSnapshot {
        let m = &self.metrics;
        PmMetricsSnapshot {
            granted: m.granted.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            released: m.released.load(Ordering::Relaxed),
            expired_reaped: m.expired_reaped.load(Ordering::Relaxed),
            executions: m.executions.load(Ordering::Relaxed),
            action_failures: m.action_failures.load(Ordering::Relaxed),
            violations_rolled_back: m.violations_rolled_back.load(Ordering::Relaxed),
            expired_errors: m.expired_errors.load(Ordering::Relaxed),
            deadlock_retries: m.deadlock_retries.load(Ordering::Relaxed),
            grants_deduped: m.grants_deduped.load(Ordering::Relaxed),
            overload_rejections: m.overload_rejections.load(Ordering::Relaxed),
            grant_lat: m.grant_lat.snapshot(),
            release_lat: m.release_lat.snapshot(),
            execute_lat: m.execute_lat.snapshot(),
            prune_lat: m.prune_lat.snapshot(),
        }
    }

    /// What the most recent [`PromiseManager::execute`] post-check looked
    /// at (pools visited, promises considered). Test/experiment hook for
    /// verifying footprint scoping; racy under concurrent executes.
    pub fn last_check_stats(&self) -> CheckerStats {
        self.last_check_stats.lock().clone()
    }

    /// A canonical string over the full promise-table state: every record
    /// (sorted by id, predicates in `Display` form, allocations in slot
    /// order), the per-pool promised-quantity aggregates, and the expiry
    /// histogram. Two managers with byte-equal digests hold equivalent
    /// promise state — the crash-recovery tests compare a pre-crash digest
    /// against the post-[`PromiseManager::recover`] digest.
    pub fn state_digest(&self) -> String {
        let tbl = self.table.lock();
        let mut records = tbl.all();
        records.sort_by_key(|r| r.id);
        let mut out = String::new();
        for rec in &records {
            out.push_str(&format!(
                "promise {} client={} request={} granted={} expires={}\n",
                rec.id, rec.client, rec.request, rec.granted_at, rec.expires_at
            ));
            for pred in &rec.predicates {
                out.push_str(&format!("  pred {pred}\n"));
            }
            for alloc in &rec.allocations {
                out.push_str(&format!("  alloc {}:{}\n", alloc.pred_idx, alloc.instance));
            }
        }
        for (pool, qty) in tbl.qty_aggregates() {
            out.push_str(&format!("qty {pool}={qty}\n"));
        }
        for (at, n) in tbl.expiry_histogram() {
            out.push_str(&format!("expiry {at}={n}\n"));
        }
        // Prepared marks are durable state (journalled, recovered), so two
        // equivalent managers must agree on them — unlike volatile pins.
        // Read under the table lock (table → prepared) for a consistent cut.
        let mut prepared: Vec<PromiseId> = self.prepared.lock().iter().copied().collect();
        prepared.sort();
        for id in prepared {
            out.push_str(&format!("prepared {id}\n"));
        }
        // Escrow leases are durable state as well (journalled `L` records,
        // checkpointed, recovered); read under the table lock
        // (table → leases) for a consistent cut.
        for (pool, qty) in self.leases.lock().iter() {
            out.push_str(&format!("lease {pool}={qty}\n"));
        }
        out
    }

    // ==================================================================
    // Internals
    // ==================================================================

    fn with_retries<R>(
        &self,
        mut body: impl FnMut() -> Result<R, PromiseError>,
    ) -> Result<R, PromiseError> {
        let mut attempt: u32 = 0;
        loop {
            match body() {
                Err(ref e) if e.retryable() && (attempt as usize) < self.retry_limit => {
                    attempt += 1;
                    self.metrics
                        .deadlock_retries
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = self.telemetry.read().as_deref() {
                        tel.retry_deadlock.fetch_add(1, Ordering::Relaxed);
                    }
                    // Short bounded backoff breaks retry lockstep between
                    // symmetric victims (exponential, capped at ~3ms).
                    let exp = attempt.min(5);
                    std::thread::sleep(std::time::Duration::from_micros(100u64 << exp));
                }
                other => return other,
            }
        }
    }

    /// Aborts `txn` on an error path, folding a failed rollback into the
    /// returned error: [`RmError::RollbackIncomplete`] (store possibly
    /// inconsistent) takes precedence over the error that triggered the
    /// abort, because state integrity trumps the original failure.
    fn abort_with(&self, txn: Txn, err: PromiseError) -> PromiseError {
        match self.rm.abort(txn) {
            Ok(()) => err,
            Err(abort_err) => PromiseError::Rm(abort_err),
        }
    }

    /// Aborts a transaction whose outcome is a normal (non-error) value;
    /// a failed rollback converts the outcome into an error.
    fn abort_then<T>(&self, txn: Txn, value: T) -> Result<T, PromiseError> {
        self.rm.abort(txn)?;
        Ok(value)
    }

    /// Appends to the journal if one is attached. Called while holding the
    /// table lock, so journal order matches table-mutation order.
    fn journal_append(&self, op: JournalOp) {
        if let Some(j) = self.journal.read().as_ref() {
            j.append(op);
            // Keep the `pm.journal.records` gauge live on every append so
            // health monitors see journal growth between compaction and
            // reaper ticks, not just the post-compaction plateau.
            if let Some(tel) = self.telemetry.read().as_deref() {
                tel.journal_records.store(j.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Answers a grant request from the request-id index if the same
    /// `(client, request)` already holds a live promise. Locks are taken
    /// one at a time (index, then table) — never nested.
    fn dedup_hit(&self, spec: &PromiseRequestSpec) -> Option<PromiseResponse> {
        let key = (spec.client.clone(), spec.request.clone());
        let id = *self.request_index.lock().get(&key)?;
        let expires_at = {
            let tbl = self.table.lock();
            let rec = tbl.get(id)?;
            if !rec.is_live(self.clock.now_ms()) {
                return None;
            }
            rec.expires_at
        };
        Some(PromiseResponse {
            correlation: spec.request.clone(),
            decision: PromiseDecision::Granted {
                promise: id,
                expires_at,
            },
        })
    }

    /// Drops request-index entries for promises leaving the table, keyed
    /// conditionally so a newer grant under a reused request id survives.
    /// Also drops their observation pins — a promise that left the table
    /// can never be re-arranged again, so the pin is moot.
    fn unindex_requests(&self, removed: &[PromiseRecord]) {
        if removed.is_empty() {
            return;
        }
        {
            let mut pins = self.pinned.lock();
            for rec in removed {
                pins.remove(&rec.id);
            }
        }
        {
            // A prepared hold leaving the table (released by abort,
            // consumed by exchange, or reaped by expiry) is resolved; its
            // mark goes with it.
            let mut prepared = self.prepared.lock();
            for rec in removed {
                prepared.remove(&rec.id);
            }
        }
        let mut idx = self.request_index.lock();
        for rec in removed {
            let key = (rec.client.clone(), rec.request.clone());
            if idx.get(&key) == Some(&rec.id) {
                idx.remove(&key);
            }
        }
    }

    /// Acquires the operation's synchronisation point(s), recording the
    /// wait in `lat`. In [`LockingMode::Global`] this is the single
    /// whole-manager point; in [`LockingMode::Footprint`] it is one point
    /// per footprint pool, taken in canonical sorted order (handled by
    /// [`ResourceManager::lock_exclusive_many`]) so two promise operations
    /// can never deadlock on sync points alone.
    fn lock_ops(
        &self,
        txn: &Txn,
        footprint: &[PoolId],
        lat: &OpLatencyMetrics,
    ) -> Result<(), RmError> {
        let started = Instant::now();
        let result = match self.locking {
            LockingMode::Global => self.rm.lock_exclusive(txn, PM_OPS),
            LockingMode::Footprint => {
                let names: Vec<String> = footprint
                    .iter()
                    .map(|pool| format!("{PM_OPS}/{pool}"))
                    .collect();
                self.rm.lock_exclusive_many(txn, &names)
            }
        };
        lat.add_lock_wait(started);
        result
    }

    /// Mirrors one checking pass into the attached telemetry registry:
    /// the `pm.check` stage histogram plus a `pm.check` span with the
    /// pass's outcome (joining the ambient trace, so a check shows up
    /// under the client operation that triggered it).
    fn record_check(&self, started: Instant, dur: std::time::Duration, outcome: SpanOutcome) {
        let guard = self.telemetry.read();
        let Some(tel) = guard.as_deref() else { return };
        tel.check_hist.record_duration(dur);
        // An Ok check outside any ambient trace carries no promise id and
        // no causal edge, so nothing downstream can join it; the histogram
        // sample above is the whole signal. Only traced or failed checks
        // earn a ring slot — this also keeps tracing off the fast path of
        // uninstrumented-by-wire workloads.
        if outcome != SpanOutcome::Ok || current_trace().is_some() {
            tel.span_since(SpanKind::PmCheck, started)
                .outcome(outcome)
                .finish_with(dur);
        }
    }

    /// Pre-computes exact per-pool `QtyAtLeast` demand for the checker
    /// from the table's cached aggregate: aggregate − demand of `excluded`
    /// records (which the snapshot omits) + demand of the `candidate`
    /// predicates (checked on top of the snapshot). Returns an empty map —
    /// falling back to the checker's snapshot re-sum — under global
    /// locking (keeping the baseline faithful to the prototype) or when an
    /// expired-but-unpruned record could inflate the aggregate.
    fn qty_hints(
        &self,
        tbl: &PromiseTable,
        now: u64,
        footprint: &[PoolId],
        excluded: &[PromiseRecord],
        candidate: &[Predicate],
    ) -> HashMap<PoolId, u64> {
        let mut hints = HashMap::new();
        if self.locking == LockingMode::Global || !tbl.none_expired(now) {
            return hints;
        }
        let demand_on = |preds: &[Predicate], pool: &PoolId| -> u64 {
            preds
                .iter()
                .filter_map(|pred| match pred {
                    Predicate::QtyAtLeast { pool: p, amount } if p == pool => Some(*amount),
                    _ => None,
                })
                .sum()
        };
        for pool in footprint {
            let excluded_demand: u64 = excluded
                .iter()
                .map(|rec| demand_on(&rec.predicates, pool))
                .sum();
            hints.insert(
                pool.clone(),
                tbl.promised_qty(pool)
                    .saturating_sub(excluded_demand)
                    .saturating_add(demand_on(candidate, pool)),
            );
        }
        hints
    }

    /// Pools this manager protects that `txn` has written so far — the
    /// action's write footprint, mapped from the RM write-set the same way
    /// scope enforcement maps it.
    fn written_pools(&self, txn: &Txn) -> Result<Vec<PoolId>, PromiseError> {
        let catalog = self.catalog.read();
        let mut pools = Vec::new();
        for (table, key) in self.rm.write_set(txn)? {
            let touched: Option<PoolId> = if table == Catalog::QTY_TABLE {
                Some(PoolId(key))
            } else {
                table.strip_prefix("inst:").map(|p| PoolId(p.to_owned()))
            };
            if let Some(pool) = touched {
                if catalog.contains(&pool) {
                    pools.push(pool);
                }
            }
        }
        pools.sort();
        pools.dedup();
        Ok(pools)
    }

    /// One grant attempt. The boolean in the success value is true when the
    /// response was answered from the request-id index (a deduplicated
    /// retry) rather than freshly granted.
    fn try_grant_local(
        &self,
        spec: &PromiseRequestSpec,
        local_predicates: Vec<Predicate>,
        duration_ms: u64,
        prepared: bool,
    ) -> Result<(PromiseResponse, bool), PromiseError> {
        let txn = self.rm.begin();

        // Footprint: the candidate's pools plus the pools of exchanged
        // promises (read before locking — predicate sets are immutable, so
        // an exchange record's pools cannot change while we wait; if the
        // record vanishes meanwhile, the post-lock validation rejects).
        let footprint: Vec<PoolId> = {
            let tbl = self.table.lock();
            let mut pools: Vec<PoolId> =
                local_predicates.iter().map(|p| p.pool().clone()).collect();
            for ex in &spec.exchange {
                if let Some(rec) = tbl.get(*ex) {
                    pools.extend(rec.pools().into_iter().cloned());
                }
            }
            pools.sort();
            pools.dedup();
            pools
        };
        if let Err(e) = self.lock_ops(&txn, &footprint, &self.metrics.grant_lat) {
            return Err(self.abort_with(txn, e.into()));
        }
        // Authoritative dedup under the footprint locks: a racing duplicate
        // of this request may have been granted while we waited.
        if let Some(resp) = self.dedup_hit(spec) {
            return self.abort_then(txn, (resp, true));
        }
        let now = self.clock.now_ms();

        // Validate and capture exchanged promises (now serialised against
        // releases/prunes over their pools).
        let mut exchanged: Vec<PromiseRecord> = Vec::new();
        {
            let tbl = self.table.lock();
            for ex in &spec.exchange {
                match tbl.get(*ex) {
                    Some(r) if r.is_live(now) => exchanged.push(r.clone()),
                    _ => {
                        drop(tbl);
                        return self.abort_then(
                            txn,
                            (
                                PromiseResponse {
                                    correlation: spec.request.clone(),
                                    decision: PromiseDecision::Rejected {
                                        reason: RejectReason::UnknownExchange(*ex),
                                    },
                                },
                                false,
                            ),
                        );
                    }
                }
            }
        }

        let (id, mut existing, qty_hints, pinned_at) = {
            let mut tbl = self.table.lock();
            let existing = match self.locking {
                LockingMode::Global => tbl.snapshot(now, &spec.exchange),
                LockingMode::Footprint => tbl.snapshot_pools(now, &footprint, &spec.exchange),
            };
            let hints = self.qty_hints(&tbl, now, &footprint, &exchanged, &local_predicates);
            // Observation pins, read under the table lock so they are
            // consistent with the snapshot's allocations (table → pinned).
            let pinned_at = self.pinned.lock().clone();
            (tbl.next_id(), existing, hints, pinned_at)
        };
        let mut candidate = PromiseRecord {
            id,
            client: spec.client.clone(),
            request: spec.request.clone(),
            predicates: local_predicates,
            granted_at: now,
            expires_at: now.saturating_add(duration_ms.min(self.max_duration_ms)),
            allocations: Vec::new(),
        };

        // Free exchanged tag allocations inside the txn: if the grant
        // fails the txn aborts and the old promises keep their resources
        // (§4: "the previous one should be retained").
        let catalog = self.catalog.read();
        let check_started = Instant::now();
        let grant_result = {
            let checker = Checker::new(&self.rm, &txn, &catalog)
                .with_qty_demand(qty_hints)
                .with_pinned(pinned_at);
            let mut r = Ok(Vec::new());
            for rec in &exchanged {
                if let Err(e) = checker.release_tags(rec) {
                    r = Err(CheckError::Rm(e));
                    break;
                }
            }
            if r.is_ok() {
                r = checker.grant(&mut existing, &mut candidate);
            }
            r
        };
        let check_dur = self.metrics.grant_lat.add_check(check_started);
        self.record_check(
            check_started,
            check_dur,
            match &grant_result {
                Ok(_) => SpanOutcome::Ok,
                Err(CheckError::Reject(_)) => SpanOutcome::Rejected,
                Err(_) => SpanOutcome::Error,
            },
        );
        drop(catalog);

        match grant_result {
            Ok(changed) => {
                let expires_at = candidate.expires_at;
                let mut removed: Vec<PromiseRecord> = Vec::new();
                {
                    let mut tbl = self.table.lock();
                    // A promise pinned *at snapshot time* is never in
                    // `changed` (its slots were held in place), so any
                    // pinned id here means an observation raced in while
                    // this grant was matching: abort and recompute against
                    // the pinned state (table → pinned lock order matches
                    // the pin-on-observe path, so this is race-free).
                    if !changed.is_empty() {
                        let pins = self.pinned.lock();
                        if changed.iter().any(|id| pins.contains(id)) {
                            drop(pins);
                            drop(tbl);
                            return Err(self.abort_with(txn, PromiseError::ObservationConflict));
                        }
                    }
                    for ex in &spec.exchange {
                        if let Some(old) = tbl.remove(*ex) {
                            self.journal_append(JournalOp::Release(old.id));
                            removed.push(old);
                        }
                    }
                    for cid in changed {
                        if let Some(new_rec) = existing.iter().find(|p| p.id == cid) {
                            if let Some(slot) = tbl.get_mut(cid) {
                                slot.allocations = new_rec.allocations.clone();
                                self.journal_append(JournalOp::Allocations {
                                    id: cid,
                                    allocations: new_rec.allocations.clone(),
                                });
                            }
                        }
                    }
                    if prepared {
                        // One atomic record: the grant and its prepared
                        // mark are a single journal entry, so recovery can
                        // never see the hold without knowing it is in
                        // doubt (table → prepared lock order).
                        self.journal_append(JournalOp::Prepared(candidate.clone()));
                        self.prepared.lock().insert(id);
                    } else {
                        self.journal_append(JournalOp::Grant(candidate.clone()));
                    }
                    tbl.insert(candidate);
                }
                self.unindex_requests(&removed);
                self.request_index
                    .lock()
                    .insert((spec.client.clone(), spec.request.clone()), id);
                self.rm
                    .commit(txn)
                    .expect("grant commit cannot fail after lock acquisition");
                // Per-pool attribution and exchanged-promise lifecycle
                // terminals are recorded here, on the fresh-grant branch
                // only — deduped/rejected requests never pay for them.
                if let Some(tel) = self.telemetry.read().as_deref() {
                    let mut pools: Vec<&PoolId> =
                        spec.predicates.iter().map(|p| p.pool()).collect();
                    pools.sort();
                    pools.dedup();
                    for pool in pools {
                        tel.bump_pool(pool, true);
                    }
                    // Exchanged promises were released atomically with the
                    // fresh grant (§4); record their lifecycle terminal.
                    for ex in &spec.exchange {
                        tel.event(SpanKind::PmRelease, ex.0);
                    }
                }
                for ex in &spec.exchange {
                    self.cascade_release(*ex);
                }
                Ok((
                    PromiseResponse {
                        correlation: spec.request.clone(),
                        decision: PromiseDecision::Granted {
                            promise: id,
                            expires_at,
                        },
                    },
                    false,
                ))
            }
            Err(CheckError::Reject(reason)) => self.abort_then(
                txn,
                (
                    PromiseResponse {
                        correlation: spec.request.clone(),
                        decision: PromiseDecision::Rejected { reason },
                    },
                    false,
                ),
            ),
            Err(CheckError::Rm(e)) => Err(self.abort_with(txn, e.into())),
            Err(CheckError::Violation { promise, detail }) => Err(self.abort_with(
                txn,
                PromiseError::ViolationRolledBack {
                    violated: promise,
                    detail,
                },
            )),
        }
    }

    fn try_release(&self, id: PromiseId) -> Result<(), PromiseError> {
        let txn = self.rm.begin();
        // Footprint: the released promise's pools (immutable once granted,
        // so the pre-lock read stays exact while we wait for the locks).
        let footprint: Vec<PoolId> = match self.table.lock().get(id) {
            Some(r) => r.pools().into_iter().cloned().collect(),
            None => return Err(self.abort_with(txn, PromiseError::UnknownPromise(id))),
        };
        if let Err(e) = self.lock_ops(&txn, &footprint, &self.metrics.release_lat) {
            return Err(self.abort_with(txn, e.into()));
        }
        // Re-read under the lock: a concurrent prune may have reaped it.
        let rec = match self.table.lock().get(id) {
            Some(r) => r.clone(),
            None => return Err(self.abort_with(txn, PromiseError::UnknownPromise(id))),
        };
        let catalog = self.catalog.read();
        let check_started = Instant::now();
        let release_result = Checker::new(&self.rm, &txn, &catalog).release_tags(&rec);
        let check_dur = self.metrics.release_lat.add_check(check_started);
        self.record_check(
            check_started,
            check_dur,
            if release_result.is_ok() {
                SpanOutcome::Ok
            } else {
                SpanOutcome::Error
            },
        );
        drop(catalog);
        if let Err(e) = release_result {
            return Err(self.abort_with(txn, e.into()));
        }
        {
            let mut tbl = self.table.lock();
            if tbl.remove(id).is_some() {
                self.journal_append(JournalOp::Release(id));
            }
        }
        self.unindex_requests(std::slice::from_ref(&rec));
        self.rm
            .commit(txn)
            .expect("release commit cannot fail after lock acquisition");
        Ok(())
    }

    fn try_prune(&self) -> Result<Vec<PromiseRecord>, PromiseError> {
        let now = self.clock.now_ms();
        // Fast path: nothing expired (O(log n) via the expiry histogram).
        if self.table.lock().none_expired(now) {
            return Ok(Vec::new());
        }
        let txn = self.rm.begin();
        // Footprint: the union of the expired promises' pools. The set is
        // re-read under the lock but only ever *shrinks* (concurrent
        // releases); `now` is fixed above so nothing new expires, and a
        // concurrent grant can only insert records live past `now`.
        let expired_ids: Vec<PromiseId> = {
            let tbl = self.table.lock();
            tbl.all()
                .into_iter()
                .filter(|p| !p.is_live(now))
                .map(|p| p.id)
                .collect()
        };
        let footprint: Vec<PoolId> = {
            let tbl = self.table.lock();
            let mut pools: Vec<PoolId> = expired_ids
                .iter()
                .filter_map(|id| tbl.get(*id))
                .flat_map(|rec| rec.pools().into_iter().cloned())
                .collect();
            pools.sort();
            pools.dedup();
            pools
        };
        if let Err(e) = self.lock_ops(&txn, &footprint, &self.metrics.prune_lat) {
            return Err(self.abort_with(txn, e.into()));
        }
        let expired: Vec<PromiseRecord> = {
            let tbl = self.table.lock();
            expired_ids
                .iter()
                .filter_map(|id| tbl.get(*id))
                .cloned()
                .collect()
        };
        if expired.is_empty() {
            return self.abort_then(txn, Vec::new());
        }
        let catalog = self.catalog.read();
        let check_started = Instant::now();
        let release_result = {
            let checker = Checker::new(&self.rm, &txn, &catalog);
            expired.iter().try_for_each(|rec| checker.release_tags(rec))
        };
        let check_dur = self.metrics.prune_lat.add_check(check_started);
        self.record_check(
            check_started,
            check_dur,
            if release_result.is_ok() {
                SpanOutcome::Ok
            } else {
                SpanOutcome::Error
            },
        );
        drop(catalog);
        if let Err(e) = release_result {
            return Err(self.abort_with(txn, e.into()));
        }
        {
            let mut tbl = self.table.lock();
            for rec in &expired {
                if tbl.remove(rec.id).is_some() {
                    self.journal_append(JournalOp::Expire(rec.id));
                }
            }
        }
        self.unindex_requests(&expired);
        self.rm
            .commit(txn)
            .expect("prune commit cannot fail after lock acquisition");
        Ok(expired)
    }

    fn try_execute<R>(
        &self,
        env: &Environment,
        action: &mut impl FnMut(&ResourceManager, &Txn) -> Result<R, ActionError>,
        enforce_scope: bool,
    ) -> Result<R, PromiseError> {
        let txn = self.rm.begin();
        // Pre-validate the environment (cheap fail-fast; re-checked after
        // the action because time passes while it runs).
        if let Err(e) = self.validate_env(env, self.clock.now_ms()) {
            return Err(self.abort_with(txn, e));
        }

        // The application action itself.
        let out = match action(&self.rm, &txn) {
            Ok(v) => v,
            Err(ActionError::App(msg)) => {
                self.metrics.action_failures.fetch_add(1, Ordering::Relaxed);
                return Err(self.abort_with(txn, PromiseError::ActionFailed(msg)));
            }
            Err(ActionError::Rm(e)) => {
                // Storage failures (deadlock victims in particular) are not
                // business failures; bubble them so with_retries re-runs the
                // whole transactional attempt.
                return Err(self.abort_with(txn, PromiseError::Rm(e)));
            }
        };

        // Promise phase: derive the footprint (the pools the action wrote
        // plus the pools of promises being released), serialise on it,
        // re-validate, release tags, post-check.
        let releases = env.releases();
        let written = match self.written_pools(&txn) {
            Ok(pools) => pools,
            Err(e) => return Err(self.abort_with(txn, e)),
        };
        let footprint: Vec<PoolId> = {
            let tbl = self.table.lock();
            let mut pools = written.clone();
            pools.extend(
                releases
                    .iter()
                    .filter_map(|id| tbl.get(*id))
                    .flat_map(|rec| rec.pools().into_iter().cloned()),
            );
            pools.sort();
            pools.dedup();
            pools
        };
        if let Err(e) = self.lock_ops(&txn, &footprint, &self.metrics.execute_lat) {
            return Err(self.abort_with(txn, e.into()));
        }
        let now = self.clock.now_ms();
        if let Err(e) = self.validate_env(env, now) {
            return Err(self.abort_with(txn, e));
        }
        if enforce_scope {
            if let Err(e) = self.check_scope(env, &written) {
                self.metrics
                    .violations_rolled_back
                    .fetch_add(1, Ordering::Relaxed);
                return Err(self.abort_with(txn, e));
            }
        }
        let (release_recs, mut live, qty_hints, pinned_at) = {
            let tbl = self.table.lock();
            let recs: Vec<PromiseRecord> = releases
                .iter()
                .filter_map(|id| tbl.get(*id).cloned())
                .collect();
            let live = match self.locking {
                LockingMode::Global => tbl.snapshot(now, &releases),
                LockingMode::Footprint => tbl.snapshot_pools(now, &footprint, &releases),
            };
            let hints = self.qty_hints(&tbl, now, &footprint, &recs, &[]);
            // Observation pins, read under the table lock so they are
            // consistent with the snapshot's allocations (table → pinned).
            let pinned_at = self.pinned.lock().clone();
            (recs, live, hints, pinned_at)
        };
        // Only the written pools can have been invalidated by the action;
        // released promises never constrain others tighter. Under global
        // locking keep the prototype's full re-check of every live pool.
        let scope = match self.locking {
            LockingMode::Global => None,
            LockingMode::Footprint => Some(footprint.as_slice()),
        };
        let catalog = self.catalog.read();
        let check_started = Instant::now();
        let (check_result, check_stats) = {
            let checker = Checker::new(&self.rm, &txn, &catalog)
                .with_qty_demand(qty_hints)
                .with_pinned(pinned_at);
            let mut r = Ok(Vec::new());
            for rec in &release_recs {
                if let Err(e) = checker.release_tags(rec) {
                    r = Err(CheckError::Rm(e));
                    break;
                }
            }
            if r.is_ok() {
                r = checker.post_check(&mut live, scope);
            }
            (r, checker.stats())
        };
        let check_dur = self.metrics.execute_lat.add_check(check_started);
        self.record_check(
            check_started,
            check_dur,
            match &check_result {
                Ok(_) => SpanOutcome::Ok,
                Err(CheckError::Rm(_)) => SpanOutcome::Error,
                Err(_) => SpanOutcome::RolledBack,
            },
        );
        drop(catalog);
        *self.last_check_stats.lock() = check_stats;

        match check_result {
            Ok(changed) => {
                let mut removed: Vec<PromiseRecord> = Vec::new();
                {
                    let mut tbl = self.table.lock();
                    // Same pin-race guard as the grant write-back: a pinned
                    // id in `changed` means a client observed its
                    // allocations while this post-check was re-arranging;
                    // recompute against the pinned state.
                    if !changed.is_empty() {
                        let pins = self.pinned.lock();
                        if changed.iter().any(|id| pins.contains(id)) {
                            drop(pins);
                            drop(tbl);
                            return Err(self.abort_with(txn, PromiseError::ObservationConflict));
                        }
                    }
                    for id in &releases {
                        if let Some(old) = tbl.remove(*id) {
                            self.journal_append(JournalOp::Release(old.id));
                            removed.push(old);
                        }
                    }
                    for cid in changed {
                        if let Some(new_rec) = live.iter().find(|p| p.id == cid) {
                            if let Some(slot) = tbl.get_mut(cid) {
                                slot.allocations = new_rec.allocations.clone();
                                self.journal_append(JournalOp::Allocations {
                                    id: cid,
                                    allocations: new_rec.allocations.clone(),
                                });
                            }
                        }
                    }
                }
                self.unindex_requests(&removed);
                self.rm
                    .commit(txn)
                    .expect("execute commit cannot fail after post-check");
                Ok(out)
            }
            Err(CheckError::Violation { promise, detail }) => {
                self.metrics
                    .violations_rolled_back
                    .fetch_add(1, Ordering::Relaxed);
                Err(self.abort_with(
                    txn,
                    PromiseError::ViolationRolledBack {
                        violated: promise,
                        detail,
                    },
                ))
            }
            Err(CheckError::Rm(e)) => Err(self.abort_with(txn, e.into())),
            Err(CheckError::Reject(reason)) => {
                // Post-checks normally surface as violations; a reject here
                // means a pool vanished mid-flight — treat as violation.
                self.metrics
                    .violations_rolled_back
                    .fetch_add(1, Ordering::Relaxed);
                Err(self.abort_with(
                    txn,
                    PromiseError::ViolationRolledBack {
                        violated: PromiseId(0),
                        detail: reason.to_string(),
                    },
                ))
            }
        }
    }

    /// Scope enforcement: every pool-backed write (`written`, from
    /// [`PromiseManager::written_pools`]) must be covered by one of the
    /// environment's promises.
    fn check_scope(&self, env: &Environment, written: &[PoolId]) -> Result<(), PromiseError> {
        let covered: HashSet<PoolId> = {
            let tbl = self.table.lock();
            env.promise_ids()
                .into_iter()
                .filter_map(|id| tbl.get(id).cloned())
                .flat_map(|rec| rec.pools().into_iter().cloned().collect::<Vec<_>>())
                .collect()
        };
        for pool in written {
            if !covered.contains(pool) {
                return Err(PromiseError::ScopeViolation { pool: pool.clone() });
            }
        }
        Ok(())
    }

    fn validate_env(&self, env: &Environment, now: u64) -> Result<(), PromiseError> {
        let tbl = self.table.lock();
        for id in env.promise_ids() {
            match tbl.get(id) {
                None if self.expired_tombstones.lock().contains_key(&id) => {
                    self.metrics.expired_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(PromiseError::PromiseExpired(id));
                }
                None => return Err(PromiseError::UnknownPromise(id)),
                Some(r) if !r.is_live(now) => {
                    self.metrics.expired_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(PromiseError::PromiseExpired(id));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    fn release_refs(&self, refs: &[(Arc<PromiseManager>, PromiseId)]) {
        for (pm, id) in refs {
            let _ = pm.release(*id);
        }
    }

    fn cascade_release(&self, id: PromiseId) {
        let refs = self.delegations.lock().remove(&id);
        if let Some(refs) = refs {
            self.release_refs(&refs);
        }
    }
}
