//! Promise checking: "the most critical part of the promise manager is the
//! code that guarantees the validity of non-expired promises by ensuring
//! that sufficient resources are available to satisfy every active
//! predicate" (§8).
//!
//! Three checkers are implemented, one per resource view:
//!
//! * **anonymous** (quantity pools): the sum of quantities required by all
//!   unexpired promises must not exceed the quantity on hand;
//! * **named**: at most one unexpired promise per instance, and the
//!   instance must not be taken;
//! * **property**: a perfect bipartite matching must exist between promise
//!   slots and untaken instances (the check §8 says the original prototype
//!   left unimplemented).
//!
//! The named check is folded into the matching machinery (a named slot is
//! a slot whose only acceptable instance is the named one), which makes
//! the paper's cross-view exclusion automatic: a seat promised by name is
//! never double-counted toward an anonymous/economy-class promise on the
//! same flight.
//!
//! Under the tag strategies ([`CheckStrategy::AllocatedTags`] and
//! [`CheckStrategy::TentativeAllocation`]) the checker also reads/writes
//! the `_status` field on instance records inside the caller's transaction,
//! implementing §5's "allocated tags" / "tentative allocation" techniques.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use promises_matching::assign_slots_seeded;
use promises_rm::{Record, ResourceManager, RmError, Txn};

use crate::catalog::{status, Catalog};
use crate::error::RejectReason;
use crate::ids::{InstanceId, PoolId, PromiseId};
use crate::predicate::Predicate;
use crate::promise::{Allocation, PromiseRecord};
use crate::schema::{CheckStrategy, PoolKind};

/// Failure modes of a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A new request cannot be granted.
    Reject(RejectReason),
    /// An existing promise can no longer be honoured (post-action check).
    Violation {
        /// The promise that would be broken.
        promise: PromiseId,
        /// Explanation.
        detail: String,
    },
    /// Underlying storage error (deadlock victims etc.).
    Rm(RmError),
}

impl From<RmError> for CheckError {
    fn from(e: RmError) -> Self {
        CheckError::Rm(e)
    }
}

/// What one checking pass actually looked at — lets callers (and tests)
/// verify that footprint scoping really narrowed the work done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Pools visited by [`Checker::post_check`], in visit order.
    pub pools_visited: Vec<PoolId>,
    /// Promise records handed to `post_check` (the snapshot size).
    pub promises_considered: usize,
}

/// A checking context bound to one transaction.
pub struct Checker<'a> {
    /// The resource manager.
    pub rm: &'a ResourceManager,
    /// The transaction every read/write goes through.
    pub txn: &'a Txn,
    /// Pool schemas.
    pub catalog: &'a Catalog,
    /// Pre-computed total `QtyAtLeast` demand per pool (including any
    /// candidate), derived from the promise table's aggregate cache. When
    /// a pool is present here, the quantity check is O(1) instead of
    /// summing over the snapshot; a `debug_assert` re-sums the snapshot to
    /// guard against aggregate drift.
    qty_demand_hint: HashMap<PoolId, u64>,
    /// Promises whose allocations a client has *observed* (via
    /// [`crate::PromiseManager::promise`]) and may be acting on: their
    /// slots are restricted to the instances they currently hold, so no
    /// re-arrangement can move an allocation out from under a client that
    /// has already read it. Unpinned promises still re-arrange freely (§5).
    pinned: HashSet<PromiseId>,
    stats: RefCell<CheckerStats>,
}

/// One slot to be matched to a distinct instance.
struct Slot {
    owner: PromiseId,
    pred_idx: usize,
    /// Instances (by position in the scanned instance list) this slot accepts.
    allowed: Vec<usize>,
    /// The instance (by the same position) this slot currently holds, if
    /// any — the matcher keeps it unless an augmenting path must move it.
    seed: Option<usize>,
}

type SlotKey = (PromiseId, usize, u32);

impl<'a> Checker<'a> {
    /// Creates a checker.
    pub fn new(rm: &'a ResourceManager, txn: &'a Txn, catalog: &'a Catalog) -> Self {
        Self {
            rm,
            txn,
            catalog,
            qty_demand_hint: HashMap::new(),
            pinned: HashSet::new(),
            stats: RefCell::new(CheckerStats::default()),
        }
    }

    /// Supplies cached per-pool quantity demand (see
    /// [`Checker::qty_demand_hint`]); pools absent from the map fall back
    /// to summing over the snapshot.
    pub fn with_qty_demand(mut self, demand: HashMap<PoolId, u64>) -> Self {
        self.qty_demand_hint = demand;
        self
    }

    /// Marks promises whose allocations have been observed by a client
    /// (see [`Checker::pinned`]): their slots are held to their current
    /// instances during matching instead of being re-arranged.
    pub fn with_pinned(mut self, pinned: HashSet<PromiseId>) -> Self {
        self.pinned = pinned;
        self
    }

    /// What this checker has looked at so far.
    pub fn stats(&self) -> CheckerStats {
        self.stats.borrow().clone()
    }

    /// Grant-time check of `candidate` against the other live promises in
    /// `existing`. On success, fills `candidate.allocations` (tag
    /// strategies), possibly re-arranges existing allocations (tentative
    /// strategy), writes instance statuses, and returns the ids of
    /// existing promises whose allocations changed.
    pub fn grant(
        &self,
        existing: &mut [PromiseRecord],
        candidate: &mut PromiseRecord,
    ) -> Result<Vec<PromiseId>, CheckError> {
        let mut changed = Vec::new();
        for pool in candidate.pools().into_iter().cloned().collect::<Vec<_>>() {
            let schema = self
                .catalog
                .get(&pool)
                .map_err(|_| CheckError::Reject(RejectReason::UnknownPool(pool.clone())))?;
            match schema.kind {
                PoolKind::Quantity => self.check_quantity(&pool, existing, Some(candidate))?,
                PoolKind::Instances => match schema.strategy {
                    CheckStrategy::Satisfiability => {
                        self.match_or_err(&pool, existing, Some(&*candidate), true)
                            .map_err(|e| self.as_reject(e, &pool, candidate))?;
                    }
                    CheckStrategy::AllocatedTags => {
                        self.grant_tags_strict(&pool, candidate)?;
                    }
                    CheckStrategy::TentativeAllocation => {
                        let assignment = self
                            .match_or_err(&pool, existing, Some(&*candidate), true)
                            .map_err(|e| self.as_reject(e, &pool, candidate))?;
                        changed.extend(self.apply_assignment(
                            &pool,
                            existing,
                            Some(&mut *candidate),
                            &assignment,
                        )?);
                    }
                },
            }
        }
        Ok(changed)
    }

    /// Post-action check of live promises (§8 "Executing Actions").
    /// Under the tentative strategy, may re-arrange allocations to absorb
    /// the action's effects; returns ids of promises whose allocations
    /// changed. Errors with [`CheckError::Violation`] if some promise can
    /// no longer be honoured.
    ///
    /// When `scope` is `Some`, only those pools are re-checked — the
    /// caller asserts the action wrote nothing outside them, so promises
    /// over other pools cannot have been invalidated (`live` should then
    /// be a snapshot of just the intersecting promises). With `None`,
    /// every pool constrained by `live` is checked (the paper's original
    /// whole-table behaviour).
    pub fn post_check(
        &self,
        live: &mut [PromiseRecord],
        scope: Option<&[PoolId]>,
    ) -> Result<Vec<PromiseId>, CheckError> {
        let mut changed = Vec::new();
        let mut pools: Vec<PoolId> = match scope {
            Some(pools) => pools.to_vec(),
            None => live
                .iter()
                .flat_map(|p| p.pools().into_iter().cloned())
                .collect(),
        };
        pools.sort();
        pools.dedup();
        {
            let mut stats = self.stats.borrow_mut();
            stats.promises_considered += live.len();
        }
        for pool in pools {
            self.stats.borrow_mut().pools_visited.push(pool.clone());
            let schema = match self.catalog.get(&pool) {
                Ok(s) => s,
                Err(_) => continue,
            };
            match schema.kind {
                PoolKind::Quantity => {
                    self.check_quantity(&pool, live, None)
                        .map_err(|e| self.as_violation(e, &pool, live))?;
                }
                PoolKind::Instances => match schema.strategy {
                    CheckStrategy::Satisfiability => {
                        self.match_or_err(&pool, live, None, true)
                            .map_err(|e| self.as_violation(e, &pool, live))?;
                    }
                    CheckStrategy::AllocatedTags => {
                        self.validate_tags(&pool, live)?;
                    }
                    CheckStrategy::TentativeAllocation => {
                        let assignment = self
                            .match_or_err(&pool, live, None, true)
                            .map_err(|e| self.as_violation(e, &pool, live))?;
                        changed.extend(self.apply_assignment(&pool, live, None, &assignment)?);
                    }
                },
            }
        }
        Ok(changed)
    }

    /// Releases the tag allocations of a promise being released or
    /// expired: every instance it held that is still `promised` goes back
    /// to `available`. Instances the releasing action just `took` stay
    /// taken.
    pub fn release_tags(&self, rec: &PromiseRecord) -> Result<(), RmError> {
        for alloc in &rec.allocations {
            let Some(pred) = rec.predicates.get(alloc.pred_idx) else {
                continue;
            };
            let pool = pred.pool();
            let table = Catalog::instance_table(pool);
            // Single conditional round-trip: read, test, and write under
            // one X lock; a missing instance or non-promised status is a
            // no-op (the releasing action may have just taken it).
            self.rm
                .update_if(self.txn, &table, &alloc.instance.0, |r| {
                    if r.str(Catalog::STATUS) == Some(status::PROMISED) {
                        r.set(Catalog::STATUS, status::AVAILABLE);
                        true
                    } else {
                        false
                    }
                })?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Anonymous view
    // ------------------------------------------------------------------

    fn check_quantity(
        &self,
        pool: &PoolId,
        existing: &[PromiseRecord],
        candidate: Option<&PromiseRecord>,
    ) -> Result<(), CheckError> {
        let on_hand = self
            .catalog
            .quantity(self.rm, self.txn, pool)
            .map_err(|e| match e {
                crate::error::PromiseError::Rm(rm) => CheckError::Rm(rm),
                _ => CheckError::Reject(RejectReason::UnknownPool(pool.clone())),
            })?;
        let recompute = || -> u64 {
            existing
                .iter()
                .chain(candidate)
                .flat_map(|p| p.predicates.iter())
                .filter_map(|pred| match pred {
                    Predicate::QtyAtLeast { pool: p, amount } if p == pool => Some(*amount),
                    _ => None,
                })
                .sum()
        };
        let demand: u64 = match self.qty_demand_hint.get(pool) {
            Some(&cached) => {
                // Any promise demanding from this pool intersects it, so a
                // footprint snapshot must re-sum to exactly the aggregate.
                debug_assert_eq!(
                    cached,
                    recompute(),
                    "cached quantity demand for {pool} drifted from snapshot"
                );
                cached
            }
            None => recompute(),
        };
        if demand <= on_hand {
            Ok(())
        } else {
            Err(CheckError::Reject(RejectReason::InsufficientQuantity {
                pool: pool.clone(),
                on_hand,
                demanded: demand,
            }))
        }
    }

    // ------------------------------------------------------------------
    // Instance pools: matching machinery
    // ------------------------------------------------------------------

    /// Scans the pool and computes a full slot assignment for every
    /// promise in `existing` (plus `candidate`), or an error naming the
    /// failure. `include_promised` controls whether `promised`-status
    /// instances count as matchable (true for strategies that re-arrange).
    fn match_or_err(
        &self,
        pool: &PoolId,
        existing: &[PromiseRecord],
        candidate: Option<&PromiseRecord>,
        include_promised: bool,
    ) -> Result<HashMap<SlotKey, InstanceId>, CheckError> {
        let instances = self.scan_pool(pool)?;
        let matchable: Vec<bool> = instances
            .iter()
            .map(|(_, rec)| match rec.str(Catalog::STATUS) {
                Some(status::AVAILABLE) => true,
                Some(status::PROMISED) => include_promised,
                _ => false,
            })
            .collect();
        let slots = self.build_slots(pool, existing, candidate, &instances, &matchable)?;

        // Hand the pre-filtered per-slot allowed lists to the matching
        // crate. Current holdings seed the matching, so an assignment only
        // moves when an augmenting path genuinely needs the instance;
        // the rest is placed most-constrained-first and re-arranged via
        // augmenting paths.
        let allowed: Vec<Vec<usize>> = slots.iter().map(|s| s.allowed.clone()).collect();
        let seeds: Vec<Option<usize>> = slots.iter().map(|s| s.seed).collect();
        let rights = matchable
            .iter()
            .enumerate()
            .filter_map(|(idx, ok)| ok.then_some(idx));
        let assigned = assign_slots_seeded(rights, &allowed, &seeds).ok_or_else(|| {
            CheckError::Reject(RejectReason::Unsatisfiable { pool: pool.clone() })
        })?;

        // Expand slots back into per-slot instance assignments.
        let mut out = HashMap::new();
        let mut slot_counter: HashMap<(PromiseId, usize), u32> = HashMap::new();
        for (i, slot) in slots.iter().enumerate() {
            let k = slot_counter.entry((slot.owner, slot.pred_idx)).or_insert(0);
            out.insert(
                (slot.owner, slot.pred_idx, *k),
                instances[assigned[i]].0.clone(),
            );
            *k += 1;
        }
        Ok(out)
    }

    fn scan_pool(&self, pool: &PoolId) -> Result<Vec<(InstanceId, Record)>, CheckError> {
        self.catalog
            .instances(self.rm, self.txn, pool)
            .map_err(|e| match e {
                crate::error::PromiseError::Rm(rm) => CheckError::Rm(rm),
                _ => CheckError::Reject(RejectReason::UnknownPool(pool.clone())),
            })
    }

    /// Expands the predicates of all promises into matchable slots.
    fn build_slots(
        &self,
        pool: &PoolId,
        existing: &[PromiseRecord],
        candidate: Option<&PromiseRecord>,
        instances: &[(InstanceId, Record)],
        matchable: &[bool],
    ) -> Result<Vec<Slot>, CheckError> {
        let schema = self
            .catalog
            .get(pool)
            .map_err(|_| CheckError::Reject(RejectReason::UnknownPool(pool.clone())))?;
        let index_of: HashMap<&InstanceId, usize> = instances
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (id, i))
            .collect();
        let mut slots = Vec::new();
        for p in existing.iter().chain(candidate) {
            // Current holdings per predicate, as positions in the scanned
            // instance list: the k-th slot of a predicate is seeded with
            // the k-th allocation (allocation order is canonical — sorted
            // by instance within a predicate). Allocations that are gone
            // or no longer matchable yield unseeded slots.
            let mut held: HashMap<usize, Vec<usize>> = HashMap::new();
            for a in &p.allocations {
                if p.predicates.get(a.pred_idx).map(Predicate::pool) != Some(pool) {
                    continue;
                }
                if let Some(&i) = index_of.get(&a.instance) {
                    if matchable[i] {
                        held.entry(a.pred_idx).or_default().push(i);
                    }
                }
            }
            let pinned = self.pinned.contains(&p.id);
            // A pinned slot accepts only the instance it currently holds:
            // the client has read the allocation and may already be acting
            // on it, so the matcher must not move it. A pinned slot whose
            // held instance is gone — or no longer satisfies the predicate
            // — accepts nothing (a genuine conflict).
            let push = |slots: &mut Vec<Slot>, pred_idx: usize, k: usize, allowed: Vec<usize>| {
                let seed = held.get(&pred_idx).and_then(|v| v.get(k)).copied();
                let allowed = if pinned {
                    seed.filter(|s| allowed.contains(s))
                        .map(|s| vec![s])
                        .unwrap_or_default()
                } else {
                    allowed
                };
                slots.push(Slot {
                    owner: p.id,
                    pred_idx,
                    allowed,
                    seed,
                });
            };
            for (pred_idx, pred) in p.predicates.iter().enumerate() {
                match pred {
                    Predicate::Named { pool: pp, instance } if pp == pool => {
                        let allowed = match index_of.get(instance) {
                            Some(&i) if matchable[i] => vec![i],
                            _ => Vec::new(),
                        };
                        push(&mut slots, pred_idx, 0, allowed);
                    }
                    Predicate::Property {
                        pool: pp,
                        expr,
                        count,
                    } if pp == pool => {
                        let allowed: Vec<usize> = instances
                            .iter()
                            .enumerate()
                            .filter(|(i, (_, rec))| matchable[*i] && expr.eval(rec, schema))
                            .map(|(i, _)| i)
                            .collect();
                        for k in 0..*count {
                            push(&mut slots, pred_idx, k as usize, allowed.clone());
                        }
                    }
                    // An anonymous quantity bound over an *instance* pool
                    // desugars to `count` unconstrained slots.
                    Predicate::QtyAtLeast { pool: pp, amount } if pp == pool => {
                        let allowed: Vec<usize> =
                            (0..instances.len()).filter(|i| matchable[*i]).collect();
                        for k in 0..*amount {
                            push(&mut slots, pred_idx, k as usize, allowed.clone());
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(slots)
    }

    /// Writes statuses and allocation lists so they agree with
    /// `assignment`. Returns ids of *existing* promises whose allocations
    /// changed (the candidate's allocations are always filled in place).
    fn apply_assignment(
        &self,
        pool: &PoolId,
        existing: &mut [PromiseRecord],
        candidate: Option<&mut PromiseRecord>,
        assignment: &HashMap<SlotKey, InstanceId>,
    ) -> Result<Vec<PromiseId>, CheckError> {
        let table = Catalog::instance_table(pool);
        // Previous PROMISED set for this pool.
        let before: HashSet<InstanceId> = self
            .scan_pool(pool)?
            .into_iter()
            .filter(|(_, r)| r.str(Catalog::STATUS) == Some(status::PROMISED))
            .map(|(id, _)| id)
            .collect();
        let after: HashSet<InstanceId> = assignment.values().cloned().collect();

        for id in after.difference(&before) {
            self.rm.update(self.txn, &table, &id.0, |r| {
                r.set(Catalog::STATUS, status::PROMISED);
            })?;
        }
        for id in before.difference(&after) {
            self.rm.update(self.txn, &table, &id.0, |r| {
                r.set(Catalog::STATUS, status::AVAILABLE);
            })?;
        }

        let mut changed = Vec::new();
        let rebuild = |p: &mut PromiseRecord| {
            let mut new_allocs: Vec<Allocation> = p
                .allocations
                .iter()
                .filter(|a| p.predicates.get(a.pred_idx).map(Predicate::pool) != Some(pool))
                .cloned()
                .collect();
            for ((owner, pred_idx, _k), inst) in assignment {
                if *owner == p.id {
                    new_allocs.push(Allocation {
                        pred_idx: *pred_idx,
                        instance: inst.clone(),
                    });
                }
            }
            new_allocs.sort_by(|a, b| (a.pred_idx, &a.instance).cmp(&(b.pred_idx, &b.instance)));
            if new_allocs != p.allocations {
                p.allocations = new_allocs;
                true
            } else {
                false
            }
        };
        for p in existing.iter_mut() {
            if rebuild(p) {
                changed.push(p.id);
            }
        }
        if let Some(c) = candidate {
            rebuild(c);
        }
        Ok(changed)
    }

    /// Strict allocated-tags grant: pick free instances for the candidate
    /// without disturbing existing allocations.
    fn grant_tags_strict(
        &self,
        pool: &PoolId,
        candidate: &mut PromiseRecord,
    ) -> Result<(), CheckError> {
        let schema = self
            .catalog
            .get(pool)
            .map_err(|_| CheckError::Reject(RejectReason::UnknownPool(pool.clone())))?;
        let instances = self.scan_pool(pool)?;
        let mut free: Vec<(InstanceId, Record)> = instances
            .into_iter()
            .filter(|(_, r)| r.str(Catalog::STATUS) == Some(status::AVAILABLE))
            .collect();
        let table = Catalog::instance_table(pool);
        let mut picks: Vec<Allocation> = Vec::new();

        for (pred_idx, pred) in candidate.predicates.iter().enumerate() {
            match pred {
                Predicate::Named { pool: pp, instance } if pp == pool => {
                    let pos = free.iter().position(|(id, _)| id == instance);
                    match pos {
                        Some(i) => {
                            let (id, _) = free.remove(i);
                            picks.push(Allocation {
                                pred_idx,
                                instance: id,
                            });
                        }
                        None => {
                            return Err(CheckError::Reject(RejectReason::InstanceUnavailable {
                                pool: pool.clone(),
                                instance: instance.clone(),
                            }))
                        }
                    }
                }
                Predicate::Property {
                    pool: pp,
                    expr,
                    count,
                } if pp == pool => {
                    for _ in 0..*count {
                        let pos = free.iter().position(|(_, r)| expr.eval(r, schema));
                        match pos {
                            Some(i) => {
                                let (id, _) = free.remove(i);
                                picks.push(Allocation {
                                    pred_idx,
                                    instance: id,
                                });
                            }
                            None => {
                                return Err(CheckError::Reject(RejectReason::Unsatisfiable {
                                    pool: pool.clone(),
                                }))
                            }
                        }
                    }
                }
                Predicate::QtyAtLeast { pool: pp, amount } if pp == pool => {
                    for _ in 0..*amount {
                        if free.is_empty() {
                            return Err(CheckError::Reject(RejectReason::Unsatisfiable {
                                pool: pool.clone(),
                            }));
                        }
                        let (id, _) = free.remove(0);
                        picks.push(Allocation {
                            pred_idx,
                            instance: id,
                        });
                    }
                }
                _ => {}
            }
        }
        for a in &picks {
            self.rm.update(self.txn, &table, &a.instance.0, |r| {
                r.set(Catalog::STATUS, status::PROMISED);
            })?;
        }
        candidate.allocations.extend(picks);
        Ok(())
    }

    /// Strict allocated-tags post-check: every stored allocation must
    /// still exist, be tagged `promised`, and satisfy its predicate.
    fn validate_tags(&self, pool: &PoolId, live: &[PromiseRecord]) -> Result<(), CheckError> {
        let schema = self
            .catalog
            .get(pool)
            .map_err(|_| CheckError::Reject(RejectReason::UnknownPool(pool.clone())))?;
        let table = Catalog::instance_table(pool);
        for p in live {
            for a in &p.allocations {
                let Some(pred) = p.predicates.get(a.pred_idx) else {
                    continue;
                };
                if pred.pool() != pool {
                    continue;
                }
                let rec = self.rm.get(self.txn, &table, &a.instance.0)?;
                let ok = match &rec {
                    None => false,
                    Some(r) => {
                        r.str(Catalog::STATUS) == Some(status::PROMISED)
                            && match pred {
                                Predicate::Property { expr, .. } => expr.eval(r, schema),
                                _ => true,
                            }
                    }
                };
                if !ok {
                    return Err(CheckError::Violation {
                        promise: p.id,
                        detail: format!(
                            "allocated instance {} in pool {pool} no longer satisfies {pred}",
                            a.instance
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Error shaping
    // ------------------------------------------------------------------

    /// At grant time failures blame the candidate; refine named conflicts.
    fn as_reject(&self, e: CheckError, pool: &PoolId, candidate: &PromiseRecord) -> CheckError {
        if let CheckError::Reject(RejectReason::Unsatisfiable { .. }) = &e {
            // If the candidate names a specific instance, report that.
            for pred in &candidate.predicates {
                if let Predicate::Named { pool: pp, instance } = pred {
                    if pp == pool {
                        return CheckError::Reject(RejectReason::InstanceUnavailable {
                            pool: pool.clone(),
                            instance: instance.clone(),
                        });
                    }
                }
            }
        }
        e
    }

    /// After an action, failures are violations of some live promise.
    fn as_violation(&self, e: CheckError, pool: &PoolId, live: &[PromiseRecord]) -> CheckError {
        match e {
            CheckError::Reject(reason) => {
                let victim = live
                    .iter()
                    .find(|p| p.pools().contains(&pool))
                    .map(|p| p.id)
                    .unwrap_or(PromiseId(0));
                CheckError::Violation {
                    promise: victim,
                    detail: reason.to_string(),
                }
            }
            other => other,
        }
    }
}
