//! Time sources for promise durations and expiry.
//!
//! Promises "do not last forever" (paper §2): every promise carries an
//! expiry instant agreed at grant time. The manager is parameterised over a
//! [`Clock`] so tests and the simulation harness can drive expiry
//! deterministically with [`ManualClock`], while production code uses
//! [`SystemClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary (per-clock) epoch.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time relative to clock creation.
#[derive(Debug)]
pub struct SystemClock {
    base: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.base.elapsed().as_millis() as u64
    }
}

/// A manually advanced clock for tests and simulations.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts at the given time.
    pub fn at(ms: u64) -> Self {
        Self {
            now: AtomicU64::new(ms),
        }
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the absolute time. Panics if this would move time backwards.
    pub fn set(&self, ms: u64) {
        let prev = self.now.swap(ms, Ordering::SeqCst);
        assert!(prev <= ms, "ManualClock must not move backwards");
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(100);
        assert_eq!(c.now_ms(), 100);
        c.set(250);
        assert_eq!(c.now_ms(), 250);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::at(100);
        c.set(50);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
