//! Background expiry reaper.
//!
//! Every promise operation already prunes expired promises lazily, but a
//! manager that receives no traffic would hold expired promises' tag
//! allocations forever. The reaper is the degraded-mode companion (§6:
//! promises "can be discarded once the expiration time has passed"): a
//! background thread that calls [`PromiseManager::prune_expired`] on a
//! fixed interval so capacity is returned to the pools even when no
//! client is driving the manager.
//!
//! The same cadence drives journal compaction: each tick also calls
//! [`PromiseManager::maybe_compact`], so a long-lived manager's journal is
//! checkpointed once history outgrows the live table — the log-truncation
//! discipline that keeps recovery O(live promises) — without any
//! foreground operation paying for the checkpoint write.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::manager::PromiseManager;

/// A background thread that periodically reaps expired promises.
///
/// Stops (and joins the thread) on [`ExpiryReaper::stop`] or on drop.
pub struct ExpiryReaper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ExpiryReaper {
    /// Spawns a reaper that prunes `pm` every `interval`.
    pub fn start(pm: Arc<PromiseManager>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                // Sleep in short slices so stop() returns promptly even
                // with a long reap interval.
                let mut remaining = interval;
                while !flag.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                // Pruning failures (e.g. injected storage faults) are
                // non-fatal: the next tick — or any foreground operation's
                // lazy prune — retries.
                let _ = pm.prune_expired();
                // Compaction is likewise best-effort: an armed crash or a
                // skipped threshold just leaves the journal for next tick.
                let _ = pm.maybe_compact();
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the reaper thread to exit and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ExpiryReaper {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::manager::{PromiseManager, PromiseRequestSpec};
    use crate::predicate::Predicate;
    use crate::schema::PoolSchema;
    use promises_rm::ResourceManager;

    #[test]
    fn reaper_prunes_without_foreground_traffic() {
        let rm = Arc::new(ResourceManager::new());
        let clock = Arc::new(ManualClock::new());
        let pm = Arc::new(PromiseManager::new(
            Arc::clone(&rm),
            clock.clone() as Arc<dyn crate::clock::Clock>,
        ));
        pm.register_pool(PoolSchema::quantity("widgets"));
        pm.seed_quantity("widgets", 10).unwrap();
        pm.request(
            PromiseRequestSpec::new("r1", "c1")
                .predicate(Predicate::qty_at_least("widgets", 4))
                .duration_ms(50),
        )
        .unwrap();
        assert_eq!(pm.live_count(), 1);

        let mut reaper = ExpiryReaper::start(Arc::clone(&pm), Duration::from_millis(5));
        clock.advance(100);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pm.live_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        reaper.stop();
        assert_eq!(pm.live_count(), 0, "reaper should have pruned the expiry");
    }

    #[test]
    fn reaper_compacts_an_outgrown_journal() {
        let rm = Arc::new(ResourceManager::new());
        let clock = Arc::new(ManualClock::new());
        let journal = Arc::new(crate::journal::PromiseJournal::new());
        let pm = Arc::new(
            PromiseManager::new(
                Arc::clone(&rm),
                clock.clone() as Arc<dyn crate::clock::Clock>,
            )
            .with_journal(Arc::clone(&journal))
            .with_compaction_threshold(8),
        );
        pm.register_pool(PoolSchema::quantity("widgets"));
        pm.seed_quantity("widgets", 10).unwrap();
        for i in 0..6 {
            let resp = pm
                .request(
                    PromiseRequestSpec::new(format!("r{i}").as_str(), "c1")
                        .predicate(Predicate::qty_at_least("widgets", 4)),
                )
                .unwrap();
            pm.release(resp.decision.granted_id().unwrap()).unwrap();
        }
        assert!(journal.len() >= 8, "history built up");

        let mut reaper = ExpiryReaper::start(Arc::clone(&pm), Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while journal.len() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        reaper.stop();
        assert_eq!(
            journal.len(),
            1,
            "reaper cadence should have compacted the journal to one checkpoint"
        );
    }

    #[test]
    fn stop_is_prompt_and_idempotent() {
        let rm = Arc::new(ResourceManager::new());
        let pm = Arc::new(PromiseManager::new(
            rm,
            Arc::new(ManualClock::new()) as Arc<dyn crate::clock::Clock>,
        ));
        let mut reaper = ExpiryReaper::start(pm, Duration::from_secs(3600));
        let started = std::time::Instant::now();
        reaper.stop();
        reaper.stop();
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
