//! A text syntax for predicates, used by the wire protocol.
//!
//! The paper (§3) suggests predicates "written in a standard language such
//! as XPath or SQL" so that a general-purpose promise manager can carry
//! them opaquely. This module defines a small, unambiguous predicate
//! language matching the [`crate::Predicate`] model:
//!
//! ```text
//! predicate := qty | named | prop
//! qty       := "qty(" string ")" ">=" int
//! named     := "named(" string "," string ")"
//! prop      := "prop(" string ["," int] "):" expr
//! expr      := or
//! or        := and { "||" and }
//! and       := unary { "&&" unary }
//! unary     := "!" unary | "(" expr ")" | "true"
//!            | "desirable(" expr ")" | "atleast(" ident "," value ")"
//!            | ident cmp value
//! cmp       := "==" | "!=" | "<=" | ">=" | "<" | ">"
//! value     := int | "true" | "false" | string
//! string    := "'" chars "'"
//! ```
//!
//! Examples: `qty('pink widgets') >= 5`,
//! `prop('rooms', 1): floor == 5 && desirable(view == true)`.

use std::fmt;

use promises_rm::Value;

use crate::ids::{InstanceId, PoolId};
use crate::predicate::{CmpOp, Predicate, PropExpr};

/// Parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one predicate from the text syntax.
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    let mut p = Parser::new(input);
    let pred = p.predicate()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after predicate"));
    }
    Ok(pred)
}

/// Parses a property expression from the text syntax.
pub fn parse_expr(input: &str) -> Result<PropExpr, ParseError> {
    let mut p = Parser::new(input);
    let e = p.expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        while self
            .rest()
            .chars()
            .next()
            .map(char::is_whitespace)
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.err("expected identifier"))
        } else {
            Ok(self.src[start..self.pos].to_owned())
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("'")?;
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c == '\'' {
                let s = self.src[start..self.pos].to_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += c.len_utf8();
        }
        Err(self.err("unterminated string literal"))
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.rest().starts_with('-') {
            self.pos += 1;
        }
        while self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected integer"))
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        if self.rest().starts_with('\'') {
            return Ok(Value::Str(self.string()?));
        }
        if self.eat("true") {
            return Ok(Value::Bool(true));
        }
        if self.eat("false") {
            return Ok(Value::Bool(false));
        }
        Ok(Value::Int(self.int()?))
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        self.skip_ws();
        if self.eat("qty(") {
            let pool = self.string()?;
            self.expect(")")?;
            self.expect(">=")?;
            let n = self.int()?;
            if n < 0 {
                return Err(self.err("quantity must be non-negative"));
            }
            return Ok(Predicate::QtyAtLeast {
                pool: PoolId(pool),
                amount: n as u64,
            });
        }
        if self.eat("named(") {
            let pool = self.string()?;
            self.expect(",")?;
            let inst = self.string()?;
            self.expect(")")?;
            return Ok(Predicate::Named {
                pool: PoolId(pool),
                instance: InstanceId(inst),
            });
        }
        if self.eat("prop(") {
            let pool = self.string()?;
            let count = if self.eat(",") { self.int()? } else { 1 };
            if count < 1 {
                return Err(self.err("instance count must be >= 1"));
            }
            self.expect(")")?;
            self.expect(":")?;
            let expr = self.expr()?;
            return Ok(Predicate::Property {
                pool: PoolId(pool),
                expr,
                count: count as u32,
            });
        }
        Err(self.err("expected qty(...), named(...) or prop(...)"))
    }

    fn expr(&mut self) -> Result<PropExpr, ParseError> {
        let mut terms = vec![self.and_expr()?];
        while self.eat("||") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("non-empty")
        } else {
            PropExpr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<PropExpr, ParseError> {
        let mut terms = vec![self.unary()?];
        while self.eat("&&") {
            terms.push(self.unary()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("non-empty")
        } else {
            PropExpr::And(terms)
        })
    }

    fn unary(&mut self) -> Result<PropExpr, ParseError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(PropExpr::Not(Box::new(self.unary()?)));
        }
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        if self.eat("desirable(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(PropExpr::Desirable(Box::new(e)));
        }
        if self.eat("atleast(") {
            let prop = self.ident()?;
            self.expect(",")?;
            let value = self.value()?;
            self.expect(")")?;
            return Ok(PropExpr::AtLeastRank { prop, value });
        }
        // `true` literal (must not swallow identifiers starting with true*).
        {
            let save = self.pos;
            if self.eat("true") {
                let next = self.rest().chars().next();
                if !matches!(next, Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
                    return Ok(PropExpr::True);
                }
                self.pos = save;
            }
        }
        let prop = self.ident()?;
        self.skip_ws();
        let op = if self.eat("==") {
            CmpOp::Eq
        } else if self.eat("!=") {
            CmpOp::Ne
        } else if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let value = self.value()?;
        Ok(PropExpr::Cmp { prop, op, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_qty() {
        let p = parse_predicate("qty('pink widgets') >= 5").unwrap();
        assert_eq!(p, Predicate::qty_at_least("pink widgets", 5));
    }

    #[test]
    fn parses_named() {
        let p = parse_predicate("named('rooms', 'room-512')").unwrap();
        assert_eq!(p, Predicate::named("rooms", "room-512"));
    }

    #[test]
    fn parses_property_with_count_and_boolean_structure() {
        let p = parse_predicate(
            "prop('rooms', 2): floor == 5 && (view == true || class >= 2) && !(smoking == true)",
        )
        .unwrap();
        let Predicate::Property { pool, expr, count } = p else {
            panic!("wrong variant");
        };
        assert_eq!(pool, PoolId::from("rooms"));
        assert_eq!(count, 2);
        assert_eq!(
            expr.to_string(),
            "(floor == 5 && (view == true || class >= 2) && !(smoking == true))"
        );
    }

    #[test]
    fn property_count_defaults_to_one() {
        let p = parse_predicate("prop('rooms'): true").unwrap();
        assert_eq!(p, Predicate::property("rooms", PropExpr::True, 1));
    }

    #[test]
    fn parses_desirable_and_atleast() {
        let e = parse_expr("desirable(atleast(class, 'deluxe')) && beds == 2").unwrap();
        assert_eq!(e.desirable_count(), 1);
        assert_eq!(
            e.to_string(),
            "(desirable(atleast(class, 'deluxe')) && beds == 2)"
        );
    }

    #[test]
    fn parses_all_cmp_ops_and_values() {
        for (src, expected) in [
            ("a == 1", "a == 1"),
            ("a != -3", "a != -3"),
            ("a < 2", "a < 2"),
            ("a <= 2", "a <= 2"),
            ("a > 2", "a > 2"),
            ("a >= 2", "a >= 2"),
            ("a == true", "a == true"),
            ("a == false", "a == false"),
            ("a == 'x y'", "a == 'x y'"),
        ] {
            assert_eq!(parse_expr(src).unwrap().to_string(), expected);
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let exprs = [
            "qty('w') >= 3",
            "named('rooms', '512')",
            "prop('rooms', 2): floor == 5",
        ];
        for src in exprs {
            let p = parse_predicate(src).unwrap();
            let p2 = parse_predicate(&p.to_string()).unwrap();
            assert_eq!(p, p2, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn true_literal_vs_identifier() {
        assert_eq!(parse_expr("true").unwrap(), PropExpr::True);
        // An identifier that merely starts with "true".
        let e = parse_expr("truthy == 1");
        assert!(e.is_ok());
        let e = parse_expr("true_flag == 1").unwrap();
        assert_eq!(e.to_string(), "true_flag == 1");
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_predicate("qty('w') >= ").unwrap_err();
        assert!(e.at > 0);
        assert!(e.to_string().contains("integer"));
        assert!(parse_predicate("bogus").is_err());
        assert!(parse_predicate("qty('w') >= 5 extra").is_err());
        assert!(parse_expr("a ==").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_predicate("qty('w') >= -2").is_err());
        assert!(parse_predicate("prop('r', 0): true").is_err());
    }
}
