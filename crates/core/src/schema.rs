//! Pool schemas: how a resource pool is viewed and checked.
//!
//! Section 3 of the paper distinguishes *anonymous*, *named*, and
//! *property-based* views of resources. Views are "about the way client
//! applications view the resources, not about the resources themselves",
//! so the schema distinguishes only two physical pool kinds:
//!
//! * [`PoolKind::Quantity`] — a counter of interchangeable units
//!   ("quantity on hand", "account balance"); supports the anonymous view.
//! * [`PoolKind::Instances`] — a set of distinguishable records; supports
//!   the named view, the property view, and an anonymous view desugared to
//!   a property predicate that matches anything.
//!
//! Section 5 lists several implementation techniques for guaranteeing
//! promises; [`CheckStrategy`] selects one per instance pool so the
//! techniques can be compared head-to-head (experiment E7).

use promises_rm::Value;

use crate::ids::PoolId;

/// Physical kind of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// A single quantity-on-hand counter (anonymous view only).
    Quantity,
    /// Distinguishable instances with properties (named/property views).
    Instances,
}

/// Which of the paper's §5 implementation techniques guards an instance
/// pool. Quantity pools always use the resource-pool counter technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckStrategy {
    /// "Allocated tags": grant immediately marks chosen instances as
    /// `promised`; a request is rejected if no *free* instance fits, even
    /// when re-arranging existing tentative allocations would succeed.
    AllocatedTags,
    /// "Satisfiability check": nothing is marked at grant time; every
    /// check solves the full bipartite matching between live promises and
    /// untaken instances. Maximally permissive, most expensive per check.
    Satisfiability,
    /// "Tentative allocation": instances are marked like `AllocatedTags`,
    /// but a request that finds no free instance may *re-arrange* existing
    /// tentative allocations (augmenting path) before giving up. Grants
    /// exactly what `Satisfiability` grants at incremental cost.
    #[default]
    TentativeAllocation,
}

/// Declares one property of an instance pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    /// Property (field) name, e.g. `floor`, `view`, `class`.
    pub name: String,
    /// For string-valued properties with an acceptability order (paper
    /// §3.3: "a promise can be satisfied ... by one offering a 'better'
    /// value"), the values from worst to best, e.g.
    /// `["economy", "premium", "business", "first"]`.
    pub order: Option<Vec<String>>,
}

impl PropertyDef {
    /// A plain, unordered property.
    pub fn plain(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            order: None,
        }
    }

    /// A property whose string values are ranked worst-to-best.
    pub fn ordered(name: &str, order: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            order: Some(order.iter().map(|s| (*s).to_owned()).collect()),
        }
    }
}

/// Schema of one pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSchema {
    /// Pool identifier.
    pub id: PoolId,
    /// Physical kind.
    pub kind: PoolKind,
    /// Declared properties (instance pools only; informational for
    /// quantity pools).
    pub properties: Vec<PropertyDef>,
    /// Checking technique for instance pools.
    pub strategy: CheckStrategy,
}

impl PoolSchema {
    /// A quantity pool (anonymous view).
    pub fn quantity(id: impl Into<PoolId>) -> Self {
        Self {
            id: id.into(),
            kind: PoolKind::Quantity,
            properties: Vec::new(),
            strategy: CheckStrategy::default(),
        }
    }

    /// An instance pool with the given properties and the default
    /// (tentative-allocation) strategy.
    pub fn instances(id: impl Into<PoolId>, properties: Vec<PropertyDef>) -> Self {
        Self {
            id: id.into(),
            kind: PoolKind::Instances,
            properties,
            strategy: CheckStrategy::default(),
        }
    }

    /// Overrides the checking strategy.
    pub fn with_strategy(mut self, strategy: CheckStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Rank of `value` in the declared order of `prop` (0 = worst).
    /// `None` if the property is unordered, unknown, or the value is not a
    /// member of the order.
    pub fn rank(&self, prop: &str, value: &Value) -> Option<usize> {
        let def = self.properties.iter().find(|p| p.name == prop)?;
        let order = def.order.as_ref()?;
        let s = value.as_str()?;
        order.iter().position(|v| v == s)
    }

    /// True if the pool declares a property with this name.
    pub fn has_property(&self, prop: &str) -> bool {
        self.properties.iter().any(|p| p.name == prop)
    }
}

impl From<String> for PoolId {
    fn from(s: String) -> Self {
        PoolId(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantity_schema_defaults() {
        let s = PoolSchema::quantity("widgets");
        assert_eq!(s.kind, PoolKind::Quantity);
        assert!(s.properties.is_empty());
    }

    #[test]
    fn rank_uses_declared_order() {
        let s = PoolSchema::instances(
            "seats",
            vec![
                PropertyDef::ordered("class", &["economy", "premium", "business", "first"]),
                PropertyDef::plain("window"),
            ],
        );
        assert_eq!(s.rank("class", &Value::Str("economy".into())), Some(0));
        assert_eq!(s.rank("class", &Value::Str("first".into())), Some(3));
        assert_eq!(s.rank("class", &Value::Str("cargo".into())), None);
        assert_eq!(s.rank("window", &Value::Bool(true)), None);
        assert_eq!(s.rank("missing", &Value::Int(1)), None);
        assert!(s.has_property("window"));
        assert!(!s.has_property("aisle"));
    }

    #[test]
    fn strategy_override() {
        let s = PoolSchema::instances("rooms", vec![]).with_strategy(CheckStrategy::Satisfiability);
        assert_eq!(s.strategy, CheckStrategy::Satisfiability);
        assert_eq!(
            PoolSchema::instances("r", vec![]).strategy,
            CheckStrategy::TentativeAllocation
        );
    }
}
