//! The promise table: the manager's record of every live promise.
//!
//! "The promise manager keeps a record of all non-expired promises and
//! their predicates in a 'promise table'. Promises are placed in this
//! table when they are granted and removed when they are released" (§8).

use std::collections::HashMap;

use crate::ids::{ClientId, InstanceId, PoolId, PromiseId, RequestId};
use crate::predicate::Predicate;

/// One instance tentatively allocated to one predicate slot of a promise
/// (allocated-tag and tentative-allocation strategies, §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Index into [`PromiseRecord::predicates`].
    pub pred_idx: usize,
    /// The allocated instance.
    pub instance: InstanceId,
}

/// One granted, unreleased promise.
#[derive(Debug, Clone)]
pub struct PromiseRecord {
    /// Manager-assigned identifier (§6 "promise identifier").
    pub id: PromiseId,
    /// The requesting client.
    pub client: ClientId,
    /// Correlates with the original request (§6 "promise correlation").
    pub request: RequestId,
    /// The predicates this promise maintains (granted atomically, §4).
    pub predicates: Vec<Predicate>,
    /// Grant time (manager clock, ms).
    pub granted_at: u64,
    /// Expiry time (manager clock, ms). The manager may grant a shorter
    /// duration than requested (§6).
    pub expires_at: u64,
    /// Instances tentatively allocated to this promise's predicate slots
    /// (tag strategies only; empty under pure satisfiability checking).
    pub allocations: Vec<Allocation>,
}

impl PromiseRecord {
    /// True if the promise is live (not expired) at `now`.
    pub fn is_live(&self, now: u64) -> bool {
        now < self.expires_at
    }

    /// Instances allocated to this promise in `pool`.
    pub fn allocated_in(&self, pool: &PoolId) -> Vec<&InstanceId> {
        self.allocations
            .iter()
            .filter(|a| self.predicates.get(a.pred_idx).map(Predicate::pool) == Some(pool))
            .map(|a| &a.instance)
            .collect()
    }

    /// All pools constrained by this promise, deduplicated.
    pub fn pools(&self) -> Vec<&PoolId> {
        let mut out: Vec<&PoolId> = self.predicates.iter().map(Predicate::pool).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// In-memory index of live promises. Thread-safety is provided by the
/// manager (this structure is always accessed under its table mutex).
#[derive(Debug, Default)]
pub struct PromiseTable {
    live: HashMap<PromiseId, PromiseRecord>,
    next: u64,
}

impl PromiseTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next promise id.
    pub fn next_id(&mut self) -> PromiseId {
        self.next += 1;
        PromiseId(self.next)
    }

    /// Inserts a granted promise.
    pub fn insert(&mut self, rec: PromiseRecord) {
        self.live.insert(rec.id, rec);
    }

    /// Removes (releases) a promise, returning its record.
    pub fn remove(&mut self, id: PromiseId) -> Option<PromiseRecord> {
        self.live.remove(&id)
    }

    /// Looks up a live-or-expired promise still in the table.
    pub fn get(&self, id: PromiseId) -> Option<&PromiseRecord> {
        self.live.get(&id)
    }

    /// Mutable lookup (used to update allocations after re-arrangement).
    pub fn get_mut(&mut self, id: PromiseId) -> Option<&mut PromiseRecord> {
        self.live.get_mut(&id)
    }

    /// All promises live at `now`, excluding ids in `except`.
    pub fn live_at<'a>(
        &'a self,
        now: u64,
        except: &'a [PromiseId],
    ) -> impl Iterator<Item = &'a PromiseRecord> {
        self.live
            .values()
            .filter(move |p| p.is_live(now) && !except.contains(&p.id))
    }

    /// Removes and returns every promise expired at `now`.
    pub fn take_expired(&mut self, now: u64) -> Vec<PromiseRecord> {
        let ids: Vec<PromiseId> = self
            .live
            .values()
            .filter(|p| !p.is_live(now))
            .map(|p| p.id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.live.remove(&id))
            .collect()
    }

    /// Sum of quantities demanded from `pool` by promises live at `now`,
    /// excluding ids in `except` (§8's anonymous-resource check input).
    pub fn qty_demand(&self, pool: &PoolId, now: u64, except: &[PromiseId]) -> u64 {
        self.live_at(now, except)
            .flat_map(|p| p.predicates.iter())
            .filter_map(|pred| match pred {
                Predicate::QtyAtLeast { pool: p, amount } if p == pool => Some(*amount),
                _ => None,
            })
            .sum()
    }

    /// Number of promises currently in the table (live or awaiting prune).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Snapshot of promises live at `now`, excluding `except`, for
    /// checking outside the table lock.
    pub fn snapshot(&self, now: u64, except: &[PromiseId]) -> Vec<PromiseRecord> {
        self.live_at(now, except).cloned().collect()
    }

    /// Copies of every promise in the table, live or expired.
    pub fn all(&self) -> Vec<PromiseRecord> {
        self.live.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PropExpr;

    fn rec(table: &mut PromiseTable, pool: &str, amount: u64, expires_at: u64) -> PromiseId {
        let id = table.next_id();
        table.insert(PromiseRecord {
            id,
            client: ClientId::from("c"),
            request: RequestId::from("r"),
            predicates: vec![Predicate::qty_at_least(pool, amount)],
            granted_at: 0,
            expires_at,
            allocations: Vec::new(),
        });
        id
    }

    #[test]
    fn ids_are_monotonic() {
        let mut t = PromiseTable::new();
        let a = t.next_id();
        let b = t.next_id();
        assert!(b > a);
    }

    #[test]
    fn qty_demand_sums_live_only() {
        let mut t = PromiseTable::new();
        let p1 = rec(&mut t, "w", 5, 100);
        let _p2 = rec(&mut t, "w", 3, 100);
        let _expired = rec(&mut t, "w", 100, 10);
        let _other_pool = rec(&mut t, "x", 7, 100);
        assert_eq!(t.qty_demand(&PoolId::from("w"), 50, &[]), 8);
        assert_eq!(t.qty_demand(&PoolId::from("w"), 50, &[p1]), 3);
        assert_eq!(t.qty_demand(&PoolId::from("w"), 5, &[]), 108, "not yet expired at t=5");
    }

    #[test]
    fn take_expired_removes_only_expired() {
        let mut t = PromiseTable::new();
        let live = rec(&mut t, "w", 1, 100);
        let dead = rec(&mut t, "w", 1, 10);
        let expired = t.take_expired(50);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, dead);
        assert!(t.get(live).is_some());
        assert!(t.get(dead).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn snapshot_excludes_requested_ids() {
        let mut t = PromiseTable::new();
        let a = rec(&mut t, "w", 1, 100);
        let _b = rec(&mut t, "w", 1, 100);
        let snap = t.snapshot(0, &[a]);
        assert_eq!(snap.len(), 1);
        assert_ne!(snap[0].id, a);
    }

    #[test]
    fn pools_dedup() {
        let mut t = PromiseTable::new();
        let id = t.next_id();
        t.insert(PromiseRecord {
            id,
            client: ClientId::from("c"),
            request: RequestId::from("r"),
            predicates: vec![
                Predicate::qty_at_least("w", 1),
                Predicate::property("w", PropExpr::True, 1),
                Predicate::qty_at_least("x", 1),
            ],
            granted_at: 0,
            expires_at: 10,
            allocations: Vec::new(),
        });
        let pools = t.get(id).unwrap().pools();
        assert_eq!(pools.len(), 2);
    }

    #[test]
    fn expiry_boundary_is_exclusive() {
        let mut t = PromiseTable::new();
        let id = rec(&mut t, "w", 1, 100);
        assert!(t.get(id).unwrap().is_live(99));
        assert!(!t.get(id).unwrap().is_live(100), "expires exactly at expires_at");
    }
}
