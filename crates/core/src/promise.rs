//! The promise table: the manager's record of every live promise.
//!
//! "The promise manager keeps a record of all non-expired promises and
//! their predicates in a 'promise table'. Promises are placed in this
//! table when they are granted and removed when they are released" (§8).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::ids::{ClientId, InstanceId, PoolId, PromiseId, RequestId};
use crate::predicate::Predicate;

/// One instance tentatively allocated to one predicate slot of a promise
/// (allocated-tag and tentative-allocation strategies, §5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Index into [`PromiseRecord::predicates`].
    pub pred_idx: usize,
    /// The allocated instance.
    pub instance: InstanceId,
}

/// One granted, unreleased promise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiseRecord {
    /// Manager-assigned identifier (§6 "promise identifier").
    pub id: PromiseId,
    /// The requesting client.
    pub client: ClientId,
    /// Correlates with the original request (§6 "promise correlation").
    pub request: RequestId,
    /// The predicates this promise maintains (granted atomically, §4).
    pub predicates: Vec<Predicate>,
    /// Grant time (manager clock, ms).
    pub granted_at: u64,
    /// Expiry time (manager clock, ms). The manager may grant a shorter
    /// duration than requested (§6).
    pub expires_at: u64,
    /// Instances tentatively allocated to this promise's predicate slots
    /// (tag strategies only; empty under pure satisfiability checking).
    pub allocations: Vec<Allocation>,
}

impl PromiseRecord {
    /// True if the promise is live (not expired) at `now`.
    pub fn is_live(&self, now: u64) -> bool {
        now < self.expires_at
    }

    /// Instances allocated to this promise in `pool`.
    pub fn allocated_in(&self, pool: &PoolId) -> Vec<&InstanceId> {
        self.allocations
            .iter()
            .filter(|a| self.predicates.get(a.pred_idx).map(Predicate::pool) == Some(pool))
            .map(|a| &a.instance)
            .collect()
    }

    /// All pools constrained by this promise, deduplicated.
    pub fn pools(&self) -> Vec<&PoolId> {
        let mut out: Vec<&PoolId> = self.predicates.iter().map(Predicate::pool).collect();
        out.sort();
        out.dedup();
        out
    }
}

/// In-memory index of live promises. Thread-safety is provided by the
/// manager (this structure is always accessed under its table mutex).
///
/// Besides the primary id map, the table maintains two derived indexes so
/// footprint-scoped operations avoid whole-table scans:
///
/// * `by_pool` — which promises constrain each pool, so a check over one
///   pool snapshots only the intersecting promises;
/// * `qty_agg` — the summed `QtyAtLeast` demand per pool over **every**
///   record still in the table (including expired-but-unpruned ones, which
///   over-counts conservatively until the next prune), making the quantity
///   check O(1) instead of a table scan.
///
/// Both indexes key off each record's *predicates*, which are immutable
/// once granted; [`PromiseTable::get_mut`] exists only so the manager can
/// rewrite `allocations`, which neither index depends on.
#[derive(Debug, Default)]
pub struct PromiseTable {
    live: HashMap<PromiseId, PromiseRecord>,
    by_pool: HashMap<PoolId, HashSet<PromiseId>>,
    qty_agg: HashMap<PoolId, u64>,
    /// Histogram of `expires_at` values over records in the table, so
    /// "does any unpruned record pre-date `now`?" is an O(log n) first-key
    /// probe rather than a scan (guards [`PromiseTable::promised_qty`]).
    expiry: BTreeMap<u64, u32>,
    next: u64,
}

impl PromiseTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next promise id.
    pub fn next_id(&mut self) -> PromiseId {
        self.next += 1;
        PromiseId(self.next)
    }

    /// Raises the id counter so future [`PromiseTable::next_id`] calls
    /// return ids strictly greater than `floor` — used by journal recovery
    /// so a rebuilt table never re-issues an id that appears in the log.
    pub fn bump_next_to(&mut self, floor: u64) {
        self.next = self.next.max(floor);
    }

    /// The id high-water mark: the last id handed out by
    /// [`PromiseTable::next_id`] (or the floor set by
    /// [`PromiseTable::bump_next_to`]). Checkpoints persist this so
    /// compaction never lets a recovered table re-issue a compacted-away
    /// promise's id.
    pub fn id_high_water(&self) -> u64 {
        self.next
    }

    /// Inserts a granted promise.
    pub fn insert(&mut self, rec: PromiseRecord) {
        self.index(&rec);
        if let Some(old) = self.live.insert(rec.id, rec) {
            self.unindex(&old);
        }
        self.debug_assert_consistent();
    }

    /// Removes (releases) a promise, returning its record.
    pub fn remove(&mut self, id: PromiseId) -> Option<PromiseRecord> {
        let rec = self.live.remove(&id);
        if let Some(rec) = &rec {
            self.unindex(rec);
        }
        self.debug_assert_consistent();
        rec
    }

    /// Looks up a live-or-expired promise still in the table.
    pub fn get(&self, id: PromiseId) -> Option<&PromiseRecord> {
        self.live.get(&id)
    }

    /// Mutable lookup (used to update allocations after re-arrangement).
    pub fn get_mut(&mut self, id: PromiseId) -> Option<&mut PromiseRecord> {
        self.live.get_mut(&id)
    }

    /// All promises live at `now`, excluding ids in `except`.
    pub fn live_at<'a>(
        &'a self,
        now: u64,
        except: &'a [PromiseId],
    ) -> impl Iterator<Item = &'a PromiseRecord> {
        self.live
            .values()
            .filter(move |p| p.is_live(now) && !except.contains(&p.id))
    }

    /// Removes and returns every promise expired at `now`.
    pub fn take_expired(&mut self, now: u64) -> Vec<PromiseRecord> {
        let ids: Vec<PromiseId> = self
            .live
            .values()
            .filter(|p| !p.is_live(now))
            .map(|p| p.id)
            .collect();
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    /// Sum of quantities demanded from `pool` by promises live at `now`,
    /// excluding ids in `except` (§8's anonymous-resource check input).
    pub fn qty_demand(&self, pool: &PoolId, now: u64, except: &[PromiseId]) -> u64 {
        self.live_at(now, except)
            .flat_map(|p| p.predicates.iter())
            .filter_map(|pred| match pred {
                Predicate::QtyAtLeast { pool: p, amount } if p == pool => Some(*amount),
                _ => None,
            })
            .sum()
    }

    /// Number of promises currently in the table (live or awaiting prune).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Snapshot of promises live at `now`, excluding `except`, for
    /// checking outside the table lock.
    pub fn snapshot(&self, now: u64, except: &[PromiseId]) -> Vec<PromiseRecord> {
        self.live_at(now, except).cloned().collect()
    }

    /// Copies of every promise in the table, live or expired.
    pub fn all(&self) -> Vec<PromiseRecord> {
        self.live.values().cloned().collect()
    }

    /// Snapshot of promises live at `now` whose footprint intersects any
    /// of `pools`, excluding `except` — the footprint-scoped alternative
    /// to [`PromiseTable::snapshot`]. Cost is proportional to the number
    /// of intersecting promises, not the table size.
    pub fn snapshot_pools(
        &self,
        now: u64,
        pools: &[PoolId],
        except: &[PromiseId],
    ) -> Vec<PromiseRecord> {
        let mut ids: Vec<PromiseId> = pools
            .iter()
            .filter_map(|pool| self.by_pool.get(pool))
            .flatten()
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.iter()
            .filter_map(|id| self.live.get(id))
            .filter(|p| p.is_live(now) && !except.contains(&p.id))
            .cloned()
            .collect()
    }

    /// Cached total `QtyAtLeast` demand against `pool` over every record
    /// still in the table. Includes expired-but-unpruned promises, so it
    /// never under-counts relative to [`PromiseTable::qty_demand`]; the
    /// manager prunes expired promises before consulting it.
    pub fn promised_qty(&self, pool: &PoolId) -> u64 {
        self.qty_agg.get(pool).copied().unwrap_or(0)
    }

    /// True if no record in the table has expired by `now` — exactly the
    /// condition under which [`PromiseTable::promised_qty`] equals the
    /// live demand of [`PromiseTable::qty_demand`] for every pool.
    pub fn none_expired(&self, now: u64) -> bool {
        self.expiry
            .keys()
            .next()
            .is_none_or(|&earliest| earliest > now)
    }

    /// The cached per-pool quantity aggregates, sorted by pool — exposed
    /// so recovery equivalence can be asserted index-by-index, not just on
    /// the primary records.
    pub fn qty_aggregates(&self) -> Vec<(PoolId, u64)> {
        let mut out: Vec<(PoolId, u64)> =
            self.qty_agg.iter().map(|(p, q)| (p.clone(), *q)).collect();
        out.sort();
        out
    }

    /// The expiry histogram (`expires_at` → record count), ascending.
    pub fn expiry_histogram(&self) -> Vec<(u64, u32)> {
        self.expiry.iter().map(|(k, v)| (*k, *v)).collect()
    }

    fn index(&mut self, rec: &PromiseRecord) {
        *self.expiry.entry(rec.expires_at).or_default() += 1;
        for pool in rec.pools() {
            self.by_pool.entry(pool.clone()).or_default().insert(rec.id);
        }
        for pred in &rec.predicates {
            if let Predicate::QtyAtLeast { pool, amount } = pred {
                if *amount > 0 {
                    *self.qty_agg.entry(pool.clone()).or_default() += amount;
                }
            }
        }
    }

    fn unindex(&mut self, rec: &PromiseRecord) {
        if let Some(count) = self.expiry.get_mut(&rec.expires_at) {
            *count -= 1;
            if *count == 0 {
                self.expiry.remove(&rec.expires_at);
            }
        }
        for pool in rec.pools() {
            if let Some(set) = self.by_pool.get_mut(pool) {
                set.remove(&rec.id);
                if set.is_empty() {
                    self.by_pool.remove(pool);
                }
            }
        }
        for pred in &rec.predicates {
            if let Predicate::QtyAtLeast { pool, amount } = pred {
                if *amount > 0 {
                    if let Some(total) = self.qty_agg.get_mut(pool) {
                        *total -= amount;
                        if *total == 0 {
                            self.qty_agg.remove(pool);
                        }
                    }
                }
            }
        }
    }

    /// Debug-only drift guard: recomputes both derived indexes from
    /// scratch and asserts they match the maintained ones. Compiled out
    /// in release builds.
    fn debug_assert_consistent(&self) {
        #[cfg(debug_assertions)]
        {
            let mut by_pool: HashMap<PoolId, HashSet<PromiseId>> = HashMap::new();
            let mut qty_agg: HashMap<PoolId, u64> = HashMap::new();
            let mut expiry: BTreeMap<u64, u32> = BTreeMap::new();
            for rec in self.live.values() {
                *expiry.entry(rec.expires_at).or_default() += 1;
                for pool in rec.pools() {
                    by_pool.entry(pool.clone()).or_default().insert(rec.id);
                }
                for pred in &rec.predicates {
                    if let Predicate::QtyAtLeast { pool, amount } = pred {
                        *qty_agg.entry(pool.clone()).or_default() += amount;
                    }
                }
            }
            qty_agg.retain(|_, v| *v != 0);
            debug_assert_eq!(self.by_pool, by_pool, "pool index drifted from records");
            debug_assert_eq!(
                self.qty_agg, qty_agg,
                "quantity aggregate drifted from records"
            );
            debug_assert_eq!(self.expiry, expiry, "expiry histogram drifted from records");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PropExpr;

    fn rec(table: &mut PromiseTable, pool: &str, amount: u64, expires_at: u64) -> PromiseId {
        let id = table.next_id();
        table.insert(PromiseRecord {
            id,
            client: ClientId::from("c"),
            request: RequestId::from("r"),
            predicates: vec![Predicate::qty_at_least(pool, amount)],
            granted_at: 0,
            expires_at,
            allocations: Vec::new(),
        });
        id
    }

    #[test]
    fn ids_are_monotonic() {
        let mut t = PromiseTable::new();
        let a = t.next_id();
        let b = t.next_id();
        assert!(b > a);
    }

    #[test]
    fn qty_demand_sums_live_only() {
        let mut t = PromiseTable::new();
        let p1 = rec(&mut t, "w", 5, 100);
        let _p2 = rec(&mut t, "w", 3, 100);
        let _expired = rec(&mut t, "w", 100, 10);
        let _other_pool = rec(&mut t, "x", 7, 100);
        assert_eq!(t.qty_demand(&PoolId::from("w"), 50, &[]), 8);
        assert_eq!(t.qty_demand(&PoolId::from("w"), 50, &[p1]), 3);
        assert_eq!(
            t.qty_demand(&PoolId::from("w"), 5, &[]),
            108,
            "not yet expired at t=5"
        );
    }

    #[test]
    fn take_expired_removes_only_expired() {
        let mut t = PromiseTable::new();
        let live = rec(&mut t, "w", 1, 100);
        let dead = rec(&mut t, "w", 1, 10);
        let expired = t.take_expired(50);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, dead);
        assert!(t.get(live).is_some());
        assert!(t.get(dead).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn snapshot_excludes_requested_ids() {
        let mut t = PromiseTable::new();
        let a = rec(&mut t, "w", 1, 100);
        let _b = rec(&mut t, "w", 1, 100);
        let snap = t.snapshot(0, &[a]);
        assert_eq!(snap.len(), 1);
        assert_ne!(snap[0].id, a);
    }

    #[test]
    fn pools_dedup() {
        let mut t = PromiseTable::new();
        let id = t.next_id();
        t.insert(PromiseRecord {
            id,
            client: ClientId::from("c"),
            request: RequestId::from("r"),
            predicates: vec![
                Predicate::qty_at_least("w", 1),
                Predicate::property("w", PropExpr::True, 1),
                Predicate::qty_at_least("x", 1),
            ],
            granted_at: 0,
            expires_at: 10,
            allocations: Vec::new(),
        });
        let pools = t.get(id).unwrap().pools();
        assert_eq!(pools.len(), 2);
    }

    #[test]
    fn snapshot_pools_returns_only_intersecting_promises() {
        let mut t = PromiseTable::new();
        let w1 = rec(&mut t, "w", 1, 100);
        let w2 = rec(&mut t, "w", 2, 100);
        let x = rec(&mut t, "x", 3, 100);
        let _y = rec(&mut t, "y", 4, 100);
        let _expired_w = rec(&mut t, "w", 9, 10);

        let snap = t.snapshot_pools(50, &[PoolId::from("w")], &[]);
        let mut ids: Vec<PromiseId> = snap.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![w1, w2], "only live w-promises");

        let snap = t.snapshot_pools(50, &[PoolId::from("w"), PoolId::from("x")], &[w1]);
        let mut ids: Vec<PromiseId> = snap.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![w2, x], "union of pools minus excluded");

        assert!(t.snapshot_pools(50, &[PoolId::from("zzz")], &[]).is_empty());
    }

    #[test]
    fn snapshot_pools_dedups_multi_pool_promises() {
        let mut t = PromiseTable::new();
        let id = t.next_id();
        t.insert(PromiseRecord {
            id,
            client: ClientId::from("c"),
            request: RequestId::from("r"),
            predicates: vec![
                Predicate::qty_at_least("w", 1),
                Predicate::qty_at_least("x", 1),
            ],
            granted_at: 0,
            expires_at: 100,
            allocations: Vec::new(),
        });
        let snap = t.snapshot_pools(0, &[PoolId::from("w"), PoolId::from("x")], &[]);
        assert_eq!(snap.len(), 1, "promise spanning both pools appears once");
    }

    #[test]
    fn promised_qty_tracks_insert_remove_and_expiry() {
        let mut t = PromiseTable::new();
        let w = PoolId::from("w");
        assert_eq!(t.promised_qty(&w), 0);
        let a = rec(&mut t, "w", 5, 100);
        let _b = rec(&mut t, "w", 3, 100);
        let dead = rec(&mut t, "w", 7, 10);
        assert_eq!(
            t.promised_qty(&w),
            15,
            "aggregate counts unpruned expired too"
        );
        t.take_expired(50);
        assert_eq!(t.promised_qty(&w), 8);
        assert!(t.remove(dead).is_none());
        t.remove(a);
        assert_eq!(t.promised_qty(&w), 3);
        assert_eq!(t.promised_qty(&PoolId::from("x")), 0);
    }

    #[test]
    fn promised_qty_matches_full_qty_demand_after_prune() {
        let mut t = PromiseTable::new();
        for i in 0..20u64 {
            rec(&mut t, if i % 2 == 0 { "w" } else { "x" }, i + 1, 100 + i);
        }
        t.take_expired(110);
        for pool in [PoolId::from("w"), PoolId::from("x")] {
            assert_eq!(
                t.promised_qty(&pool),
                t.qty_demand(&pool, 110, &[]),
                "aggregate equals recomputed live demand once pruned"
            );
        }
    }

    #[test]
    fn none_expired_tracks_earliest_expiry() {
        let mut t = PromiseTable::new();
        assert!(t.none_expired(u64::MAX), "empty table has nothing expired");
        let early = rec(&mut t, "w", 1, 10);
        let _late = rec(&mut t, "w", 1, 100);
        assert!(t.none_expired(9));
        assert!(
            !t.none_expired(10),
            "boundary: expired exactly at expires_at"
        );
        t.remove(early);
        assert!(
            t.none_expired(50),
            "removing the earliest re-raises the bound"
        );
        t.take_expired(100);
        assert!(t.none_expired(u64::MAX));
    }

    #[test]
    fn expiry_boundary_is_exclusive() {
        let mut t = PromiseTable::new();
        let id = rec(&mut t, "w", 1, 100);
        assert!(t.get(id).unwrap().is_live(99));
        assert!(
            !t.get(id).unwrap().is_live(100),
            "expires exactly at expires_at"
        );
    }
}
