//! Identifier newtypes used throughout the promise layer.

use std::fmt;

/// Identifies a granted promise; allocated by the promise manager and
/// returned in the promise response (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PromiseId(pub u64);

impl fmt::Display for PromiseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "promise#{}", self.0)
    }
}

/// Client-chosen identifier correlating a promise request with its
/// response (paper §6 "request identifier" / "promise correlation").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RequestId(pub String);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RequestId {
    fn from(s: &str) -> Self {
        RequestId(s.to_owned())
    }
}

/// Identifies a promise client (an application instance).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClientId(pub String);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClientId {
    fn from(s: &str) -> Self {
        ClientId(s.to_owned())
    }
}

/// Identifies a resource pool: either a pool of interchangeable quantity
/// (anonymous view) or a collection of distinguishable instances
/// (named / property views). See paper §3.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(pub String);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PoolId {
    fn from(s: &str) -> Self {
        PoolId(s.to_owned())
    }
}

/// Identifies one resource instance within an instance pool (the paper's
/// "named view" identifier, e.g. `room-512` or `seat-24G-QF1-20071008`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub String);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for InstanceId {
    fn from(s: &str) -> Self {
        InstanceId(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(PromiseId(3).to_string(), "promise#3");
        assert_eq!(RequestId::from("r1").to_string(), "r1");
        assert_eq!(ClientId::from("c").to_string(), "c");
        assert_eq!(PoolId::from("widgets").to_string(), "widgets");
        assert_eq!(InstanceId::from("room-512").to_string(), "room-512");
    }

    #[test]
    fn ids_hash_and_compare() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(PromiseId(1));
        s.insert(PromiseId(1));
        assert_eq!(s.len(), 1);
        assert!(PromiseId(1) < PromiseId(2));
        assert_eq!(PoolId::from("a"), PoolId::from("a"));
    }
}
