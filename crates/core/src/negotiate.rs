//! Promise negotiation over desirable properties (paper §3.3).
//!
//! "Users may regard some properties as essential and others as desirable
//! but not required ... The interplay between essential and desirable
//! properties when obtaining a promise may be complicated and could lead
//! to systems where the promise requestor and the promise maker negotiate
//! to find a promise that is both satisfiable and maximally desirable."
//!
//! The negotiation implemented here is the paper's example ladder: start
//! from the full request; while rejected, weaken it by dropping the least
//! important [`PropExpr::Desirable`] clause (last in DFS order) and retry;
//! stop at the first grant or when only essential clauses remain and those
//! are still rejected.

use crate::error::PromiseError;
use crate::manager::{PromiseDecision, PromiseManager, PromiseRequestSpec, PromiseResponse};
use crate::predicate::Predicate;

/// Outcome of a negotiated request.
#[derive(Debug, Clone)]
pub struct NegotiatedResponse {
    /// The final response (granted or the essential-only rejection).
    pub response: PromiseResponse,
    /// How many desirable clauses were dropped, per predicate, to reach
    /// the granted form (all zeros if granted as asked).
    pub dropped_per_predicate: Vec<usize>,
    /// The predicates as actually granted (weakened forms).
    pub granted_predicates: Vec<Predicate>,
}

impl NegotiatedResponse {
    /// Total desirable clauses dropped across all predicates.
    pub fn total_dropped(&self) -> usize {
        self.dropped_per_predicate.iter().sum()
    }
}

impl PromiseManager {
    /// Requests a promise, negotiating away desirable clauses if the full
    /// request cannot be granted. Each retry drops one more desirable
    /// clause (globally, last-first across the predicate list).
    pub fn request_negotiated(
        &self,
        spec: PromiseRequestSpec,
    ) -> Result<NegotiatedResponse, PromiseError> {
        // A replayed request (same client + request id — a duplicated
        // message, or a resend after a lost reply) must report the
        // *original* negotiated outcome. Re-running the ladder would hit
        // grant dedup at rung 0 and come back labelled as an unweakened
        // grant — misreporting the condition the client actually accepted
        // and echoing predicates stronger than the ones held.
        if let Some(existing) = self.promise_for_request(&spec.client, &spec.request) {
            if let Some(rec) = self.promise(existing) {
                let dropped_per_predicate = spec
                    .predicates
                    .iter()
                    .zip(&rec.predicates)
                    .map(|(asked, granted)| desirables(asked).saturating_sub(desirables(granted)))
                    .collect();
                return Ok(NegotiatedResponse {
                    response: PromiseResponse {
                        correlation: spec.request,
                        decision: PromiseDecision::Granted {
                            promise: rec.id,
                            expires_at: rec.expires_at,
                        },
                    },
                    dropped_per_predicate,
                    granted_predicates: rec.predicates,
                });
            }
        }

        let max_drops: usize = spec
            .predicates
            .iter()
            .map(|p| match p {
                Predicate::Property { expr, .. } => expr.desirable_count(),
                _ => 0,
            })
            .sum();

        for total_drop in 0..=max_drops {
            let (preds, dropped) = weaken_predicates(&spec.predicates, total_drop);
            let mut attempt = spec.clone();
            attempt.predicates = preds.clone();
            let response = self.request(attempt)?;
            let is_last = total_drop == max_drops;
            if matches!(response.decision, PromiseDecision::Granted { .. }) || is_last {
                return Ok(NegotiatedResponse {
                    response,
                    dropped_per_predicate: dropped,
                    granted_predicates: preds,
                });
            }
        }
        unreachable!("loop always returns on the final iteration")
    }
}

/// Desirable-clause count of one predicate (0 for non-property forms).
fn desirables(p: &Predicate) -> usize {
    match p {
        Predicate::Property { expr, .. } => expr.desirable_count(),
        _ => 0,
    }
}

/// Weakens the predicate list by dropping `total_drop` desirable clauses,
/// taking from the *last* predicate's desirables first. Returns the new
/// predicates and the per-predicate drop counts.
///
/// Public so remote negotiators (the cluster coordinator's cross-shard
/// ladder) weaken requests with exactly the same discipline as the local
/// [`PromiseManager::request_negotiated`] loop — rung `n` of any ladder is
/// the same predicate list no matter where it is computed.
pub fn weaken_predicates(
    preds: &[Predicate],
    mut total_drop: usize,
) -> (Vec<Predicate>, Vec<usize>) {
    let mut out: Vec<Predicate> = preds.to_vec();
    let mut dropped = vec![0usize; preds.len()];
    for i in (0..out.len()).rev() {
        if total_drop == 0 {
            break;
        }
        if let Predicate::Property { pool, expr, count } = &out[i] {
            let avail = expr.desirable_count();
            let take = avail.min(total_drop);
            if take > 0 {
                out[i] = Predicate::Property {
                    pool: pool.clone(),
                    expr: expr.weakened(take),
                    count: *count,
                };
                dropped[i] = take;
                total_drop -= take;
            }
        }
    }
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PropExpr;

    #[test]
    fn weaken_takes_from_last_predicate_first() {
        let preds = vec![
            Predicate::property("a", PropExpr::all([PropExpr::eq("x", 1i64).desirable()]), 1),
            Predicate::property(
                "b",
                PropExpr::all([
                    PropExpr::eq("y", 1i64).desirable(),
                    PropExpr::eq("z", 1i64).desirable(),
                ]),
                1,
            ),
        ];
        let (_, dropped) = weaken_predicates(&preds, 1);
        assert_eq!(dropped, vec![0, 1]);
        let (_, dropped) = weaken_predicates(&preds, 2);
        assert_eq!(dropped, vec![0, 2]);
        let (_, dropped) = weaken_predicates(&preds, 3);
        assert_eq!(dropped, vec![1, 2]);
        let (out, dropped) = weaken_predicates(&preds, 99);
        assert_eq!(dropped, vec![1, 2]);
        // Fully weakened predicates have no desirables left.
        for p in &out {
            if let Predicate::Property { expr, .. } = p {
                assert_eq!(expr.desirable_count(), 0);
            }
        }
    }

    #[test]
    fn non_property_predicates_are_untouched() {
        let preds = vec![Predicate::qty_at_least("w", 5)];
        let (out, dropped) = weaken_predicates(&preds, 3);
        assert_eq!(out, preds);
        assert_eq!(dropped, vec![0]);
    }
}
