//! Promise environments: which promises protect an action (paper §6).
//!
//! "Application requests can specify that they must be executed within a
//! specific promise environment ... by including an `<environment>`
//! element in the associated message header", listing promise identifiers
//! and per-promise *release options* that say whether each promise should
//! be released after the request completes — atomically with it (§4).

use crate::ids::PromiseId;

/// Whether a promise is released together with the action it protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOption {
    /// Keep the promise after the action succeeds.
    Keep,
    /// Release the promise if — and only if — the action succeeds. If the
    /// action fails (or is rolled back for violating other promises), the
    /// promise remains in force (§4: "if the purchase fails ... then the
    /// promise should remain in force").
    ReleaseAfter,
}

/// The promise environment an action executes under.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Environment {
    entries: Vec<(PromiseId, ReleaseOption)>,
}

impl Environment {
    /// An empty environment: the action runs with no promise protection
    /// (allowed by the paper — such actions are still violation-checked).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: run under `id`, keeping it afterwards.
    pub fn under(mut self, id: PromiseId) -> Self {
        self.entries.push((id, ReleaseOption::Keep));
        self
    }

    /// Builder: run under `id` and release it atomically with success.
    pub fn releasing(mut self, id: PromiseId) -> Self {
        self.entries.push((id, ReleaseOption::ReleaseAfter));
        self
    }

    /// All `(promise, option)` entries.
    pub fn entries(&self) -> &[(PromiseId, ReleaseOption)] {
        &self.entries
    }

    /// Promise ids scheduled for release on success.
    pub fn releases(&self) -> Vec<PromiseId> {
        self.entries
            .iter()
            .filter(|(_, opt)| *opt == ReleaseOption::ReleaseAfter)
            .map(|(id, _)| *id)
            .collect()
    }

    /// All referenced promise ids.
    pub fn promise_ids(&self) -> Vec<PromiseId> {
        self.entries.iter().map(|(id, _)| *id).collect()
    }

    /// True if no promises are referenced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let env = Environment::none()
            .under(PromiseId(1))
            .releasing(PromiseId(2))
            .under(PromiseId(3));
        assert_eq!(
            env.promise_ids(),
            vec![PromiseId(1), PromiseId(2), PromiseId(3)]
        );
        assert_eq!(env.releases(), vec![PromiseId(2)]);
        assert!(!env.is_empty());
        assert!(Environment::none().is_empty());
    }
}
