//! Predicates: the boolean conditions a promise maintains.
//!
//! "Predicates are simply Boolean expressions over resources. Our model
//! imposes no restrictions on the form these expressions can take" (§3).
//! This implementation provides a typed expression tree covering the three
//! resource views of §3 plus the §3.3 refinements (ordered "or better"
//! values and essential-vs-desirable clauses used in negotiation). A text
//! syntax for the wire protocol lives in [`crate::parser`].

use std::fmt;

use promises_rm::{Record, Value};

use crate::ids::{InstanceId, PoolId};
use crate::schema::PoolSchema;

/// Comparison operators over property values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A boolean expression over the properties of one resource instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropExpr {
    /// Always true: the anonymous view over an instance pool ("any
    /// economy seat" becomes `AtLeastRank(class, economy)`, "any instance
    /// at all" becomes `True`).
    True,
    /// Compare a property against a constant. Cross-type comparisons are
    /// false (never a panic): a promise over a mistyped property simply
    /// cannot be satisfied.
    Cmp {
        /// Property name.
        prop: String,
        /// Operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Ordered acceptability (§3.3): satisfied by the requested value *or
    /// any better one* according to the pool schema's declared order
    /// (e.g. an economy promise satisfied by a business-class seat).
    AtLeastRank {
        /// Property name (must be schema-ordered).
        prop: String,
        /// Minimum acceptable value.
        value: Value,
    },
    /// Conjunction.
    And(Vec<PropExpr>),
    /// Disjunction.
    Or(Vec<PropExpr>),
    /// Negation.
    Not(Box<PropExpr>),
    /// A desirable-but-not-essential clause (§3.3). Evaluates like its
    /// inner expression, but negotiation may weaken a rejected
    /// request by replacing desirable clauses with `True`.
    Desirable(Box<PropExpr>),
}

impl PropExpr {
    /// Convenience: `prop == value`.
    pub fn eq(prop: &str, value: impl Into<Value>) -> Self {
        PropExpr::Cmp {
            prop: prop.to_owned(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience: `prop <cmp> value`.
    pub fn cmp(prop: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        PropExpr::Cmp {
            prop: prop.to_owned(),
            op,
            value: value.into(),
        }
    }

    /// Convenience: the ordered "this value or better" clause.
    pub fn at_least(prop: &str, value: impl Into<Value>) -> Self {
        PropExpr::AtLeastRank {
            prop: prop.to_owned(),
            value: value.into(),
        }
    }

    /// Convenience: conjunction of clauses.
    pub fn all(clauses: impl IntoIterator<Item = PropExpr>) -> Self {
        PropExpr::And(clauses.into_iter().collect())
    }

    /// Marks an expression desirable rather than essential.
    pub fn desirable(self) -> Self {
        PropExpr::Desirable(Box::new(self))
    }

    /// Evaluates against an instance's property record.
    pub fn eval(&self, rec: &Record, schema: &PoolSchema) -> bool {
        match self {
            PropExpr::True => true,
            PropExpr::Cmp { prop, op, value } => rec
                .get(prop)
                .and_then(|actual| actual.partial_cmp_same(value))
                .map(|ord| op.eval(ord))
                .unwrap_or(false),
            PropExpr::AtLeastRank { prop, value } => {
                let wanted = match schema.rank(prop, value) {
                    Some(r) => r,
                    None => return false,
                };
                match rec.get(prop).and_then(|actual| schema.rank(prop, actual)) {
                    Some(actual_rank) => actual_rank >= wanted,
                    None => false,
                }
            }
            PropExpr::And(cs) => cs.iter().all(|c| c.eval(rec, schema)),
            PropExpr::Or(cs) => cs.iter().any(|c| c.eval(rec, schema)),
            PropExpr::Not(c) => !c.eval(rec, schema),
            PropExpr::Desirable(c) => c.eval(rec, schema),
        }
    }

    /// Number of desirable clauses in the tree (DFS order).
    pub fn desirable_count(&self) -> usize {
        match self {
            PropExpr::Desirable(c) => 1 + c.desirable_count(),
            PropExpr::And(cs) | PropExpr::Or(cs) => cs.iter().map(Self::desirable_count).sum(),
            PropExpr::Not(c) => c.desirable_count(),
            _ => 0,
        }
    }

    /// Returns a copy with the *last* `drop` desirable clauses (in DFS
    /// order) replaced by `True`. Used by negotiation to weaken a request
    /// one step at a time, dropping the least important clause first.
    pub fn weakened(&self, drop: usize) -> PropExpr {
        let total = self.desirable_count();
        let keep = total.saturating_sub(drop);
        let mut seen = 0usize;
        self.weaken_walk(&mut seen, keep)
    }

    fn weaken_walk(&self, seen: &mut usize, keep: usize) -> PropExpr {
        match self {
            PropExpr::Desirable(c) => {
                let idx = *seen;
                *seen += 1;
                if idx < keep {
                    PropExpr::Desirable(Box::new(c.weaken_walk(seen, keep)))
                } else {
                    // Still count nested desirables so indices stay stable.
                    let _ = c.weaken_walk(seen, keep);
                    PropExpr::True
                }
            }
            PropExpr::And(cs) => {
                PropExpr::And(cs.iter().map(|c| c.weaken_walk(seen, keep)).collect())
            }
            PropExpr::Or(cs) => {
                PropExpr::Or(cs.iter().map(|c| c.weaken_walk(seen, keep)).collect())
            }
            PropExpr::Not(c) => PropExpr::Not(Box::new(c.weaken_walk(seen, keep))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for PropExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropExpr::True => f.write_str("true"),
            PropExpr::Cmp { prop, op, value } => match value {
                Value::Str(s) => write!(f, "{prop} {op} '{s}'"),
                v => write!(f, "{prop} {op} {v}"),
            },
            PropExpr::AtLeastRank { prop, value } => match value {
                Value::Str(s) => write!(f, "atleast({prop}, '{s}')"),
                v => write!(f, "atleast({prop}, {v})"),
            },
            PropExpr::And(cs) => join(f, cs, " && "),
            PropExpr::Or(cs) => join(f, cs, " || "),
            PropExpr::Not(c) => write!(f, "!({c})"),
            PropExpr::Desirable(c) => write!(f, "desirable({c})"),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, cs: &[PropExpr], sep: &str) -> fmt::Result {
    if cs.is_empty() {
        return f.write_str("true");
    }
    write!(f, "(")?;
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

/// One promised condition over one pool: the unit carried in promise
/// requests (§6 pairs "predicates" with "resources"; here the pool id is
/// embedded so a request is just `Vec<Predicate>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Anonymous view over a quantity pool: at least `amount` units remain
    /// available to this promise (e.g. `qty('pink widgets') >= 5`).
    QtyAtLeast {
        /// Quantity pool.
        pool: PoolId,
        /// Units required.
        amount: u64,
    },
    /// Named view: this exact instance stays available.
    Named {
        /// Instance pool.
        pool: PoolId,
        /// The instance.
        instance: InstanceId,
    },
    /// Property view: `count` *distinct* instances matching `expr` stay
    /// available to this promise.
    Property {
        /// Instance pool.
        pool: PoolId,
        /// Condition each instance must satisfy.
        expr: PropExpr,
        /// Number of distinct instances required.
        count: u32,
    },
}

impl Predicate {
    /// The pool this predicate constrains.
    pub fn pool(&self) -> &PoolId {
        match self {
            Predicate::QtyAtLeast { pool, .. }
            | Predicate::Named { pool, .. }
            | Predicate::Property { pool, .. } => pool,
        }
    }

    /// Convenience constructor for the anonymous quantity view.
    pub fn qty_at_least(pool: impl Into<PoolId>, amount: u64) -> Self {
        Predicate::QtyAtLeast {
            pool: pool.into(),
            amount,
        }
    }

    /// Convenience constructor for the named view.
    pub fn named(pool: impl Into<PoolId>, instance: impl Into<InstanceId>) -> Self {
        Predicate::Named {
            pool: pool.into(),
            instance: instance.into(),
        }
    }

    /// Convenience constructor for the property view.
    pub fn property(pool: impl Into<PoolId>, expr: PropExpr, count: u32) -> Self {
        Predicate::Property {
            pool: pool.into(),
            expr,
            count,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::QtyAtLeast { pool, amount } => write!(f, "qty('{pool}') >= {amount}"),
            Predicate::Named { pool, instance } => write!(f, "named('{pool}', '{instance}')"),
            Predicate::Property { pool, expr, count } => {
                write!(f, "prop('{pool}', {count}): {expr}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{PoolSchema, PropertyDef};

    fn hotel_schema() -> PoolSchema {
        PoolSchema::instances(
            "rooms",
            vec![
                PropertyDef::plain("floor"),
                PropertyDef::plain("view"),
                PropertyDef::ordered("class", &["standard", "deluxe", "suite"]),
            ],
        )
    }

    fn room(floor: i64, view: bool, class: &str) -> Record {
        Record::new()
            .with("floor", floor)
            .with("view", view)
            .with("class", class)
    }

    #[test]
    fn cmp_ops_evaluate() {
        let s = hotel_schema();
        let r = room(5, true, "standard");
        assert!(PropExpr::eq("floor", 5i64).eval(&r, &s));
        assert!(PropExpr::cmp("floor", CmpOp::Ge, 3i64).eval(&r, &s));
        assert!(PropExpr::cmp("floor", CmpOp::Lt, 6i64).eval(&r, &s));
        assert!(!PropExpr::cmp("floor", CmpOp::Gt, 5i64).eval(&r, &s));
        assert!(PropExpr::cmp("floor", CmpOp::Ne, 4i64).eval(&r, &s));
        assert!(PropExpr::eq("view", true).eval(&r, &s));
    }

    #[test]
    fn cross_type_comparison_is_false_not_panic() {
        let s = hotel_schema();
        let r = room(5, true, "standard");
        assert!(!PropExpr::eq("floor", "five").eval(&r, &s));
        assert!(!PropExpr::eq("missing", 1i64).eval(&r, &s));
    }

    #[test]
    fn ordered_or_better_semantics() {
        let s = hotel_schema();
        let want_deluxe = PropExpr::at_least("class", "deluxe");
        assert!(!want_deluxe.eval(&room(1, false, "standard"), &s));
        assert!(want_deluxe.eval(&room(1, false, "deluxe"), &s));
        assert!(want_deluxe.eval(&room(1, false, "suite"), &s), "upgrade ok");
        // Unknown requested value can never be satisfied.
        assert!(!PropExpr::at_least("class", "palace").eval(&room(1, false, "suite"), &s));
        // Unordered property cannot be used with atleast.
        assert!(!PropExpr::at_least("floor", 1i64).eval(&room(1, false, "suite"), &s));
    }

    #[test]
    fn boolean_combinators() {
        let s = hotel_schema();
        let r = room(5, true, "standard");
        let e = PropExpr::all([PropExpr::eq("floor", 5i64), PropExpr::eq("view", true)]);
        assert!(e.eval(&r, &s));
        let e = PropExpr::Or(vec![
            PropExpr::eq("floor", 9i64),
            PropExpr::eq("view", true),
        ]);
        assert!(e.eval(&r, &s));
        let e = PropExpr::Not(Box::new(PropExpr::eq("view", false)));
        assert!(e.eval(&r, &s));
        assert!(PropExpr::And(vec![]).eval(&r, &s), "empty And is true");
        assert!(!PropExpr::Or(vec![]).eval(&r, &s), "empty Or is false");
    }

    #[test]
    fn desirable_evaluates_like_inner_but_is_weakenable() {
        let s = hotel_schema();
        let e = PropExpr::all([
            PropExpr::eq("floor", 5i64),
            PropExpr::eq("view", true).desirable(),
            PropExpr::eq("class", "suite").desirable(),
        ]);
        assert_eq!(e.desirable_count(), 2);
        let r = room(5, false, "standard");
        assert!(
            !e.eval(&r, &s),
            "desirables still required before weakening"
        );
        // Drop the last desirable (suite) only.
        let w1 = e.weakened(1);
        assert!(!w1.eval(&r, &s), "view desirable still required");
        assert!(w1.eval(&room(5, true, "standard"), &s));
        // Drop both.
        let w2 = e.weakened(2);
        assert!(w2.eval(&r, &s), "essential floor clause alone remains");
        // Essentials are never dropped.
        assert!(!w2.eval(&room(4, true, "suite"), &s));
    }

    #[test]
    fn weakened_beyond_count_is_saturating() {
        let e = PropExpr::eq("view", true).desirable();
        assert_eq!(e.weakened(10), PropExpr::True);
    }

    #[test]
    fn predicate_accessors_and_display() {
        let p = Predicate::qty_at_least("widgets", 5);
        assert_eq!(p.pool(), &PoolId::from("widgets"));
        assert_eq!(p.to_string(), "qty('widgets') >= 5");
        let p = Predicate::named("rooms", crate::ids::InstanceId("512".into()));
        assert_eq!(p.to_string(), "named('rooms', '512')");
        let p = Predicate::property("rooms", PropExpr::eq("view", true), 2);
        assert_eq!(p.to_string(), "prop('rooms', 2): view == true");
    }

    #[test]
    fn expr_display_roundtrips_visually() {
        let e = PropExpr::all([
            PropExpr::eq("floor", 5i64),
            PropExpr::Not(Box::new(PropExpr::eq("smoking", true))),
            PropExpr::at_least("class", "deluxe").desirable(),
        ]);
        assert_eq!(
            e.to_string(),
            "(floor == 5 && !(smoking == true) && desirable(atleast(class, 'deluxe')))"
        );
    }
}
