//! `promises-core` — the Promises isolation pattern for service-based
//! applications.
//!
//! This crate implements the primary contribution of Greenfield, Fekete,
//! Jang, Kuo & Nepal, *Isolation Support for Service-based Applications:
//! A Position Paper* (CIDR 2007): **Promises**, "a uniform mechanism that
//! clients can use to ensure that they can rely on the values of
//! information resources remaining unchanged in the course of
//! long-running operations" — isolation for loosely-coupled services
//! where traditional distributed locks are infeasible.
//!
//! # The model
//!
//! * A client determines the resources it needs and expresses them as
//!   [`Predicate`]s — boolean conditions over resources viewed
//!   *anonymously* (quantities), *by name* (specific instances), or *via
//!   properties* (any instance matching an expression). See paper §3.
//! * It sends them in a [`PromiseRequestSpec`] to a [`PromiseManager`],
//!   which consults the [`promises_rm::ResourceManager`] and either
//!   **grants** (guaranteeing the predicates hold until release or expiry)
//!   or **rejects immediately** — never blocking, hence never deadlocking
//!   at the promise layer (§9).
//! * Application actions execute through [`PromiseManager::execute`]
//!   under an [`Environment`] naming their protecting promises; after
//!   every action all live promises are re-checked and a violating action
//!   is rolled back (§8).
//! * The §4 atomicity rules hold throughout: multi-predicate requests are
//!   all-or-nothing, action+release form an atomic unit, and
//!   [`PromiseManager::modify`] exchanges old promises for new ones
//!   atomically.
//!
//! # Quick example
//!
//! ```
//! use std::sync::Arc;
//! use promises_core::{
//!     Environment, PoolSchema, Predicate, PromiseManager, PromiseRequestSpec, SystemClock,
//! };
//! use promises_rm::ResourceManager;
//!
//! let rm = Arc::new(ResourceManager::new());
//! let pm = PromiseManager::new(Arc::clone(&rm), Arc::new(SystemClock::new()));
//! pm.register_pool(PoolSchema::quantity("pink-widgets"));
//! pm.seed_quantity("pink-widgets", 100).unwrap();
//!
//! // Figure 1: promise that 5 pink widgets stay in stock.
//! let resp = pm
//!     .request(
//!         PromiseRequestSpec::new("order-1", "merchant")
//!             .predicate(Predicate::qty_at_least("pink-widgets", 5)),
//!     )
//!     .unwrap();
//! let promise = resp.decision.granted_id().expect("granted");
//!
//! // ... later: purchase the stock, releasing the promise atomically.
//! pm.execute(&Environment::none().releasing(promise), |rm, txn| {
//!     rm.update(txn, "qty_pools", "pink-widgets", |r| {
//!         let q = r.int("qty").unwrap();
//!         r.set("qty", q - 5);
//!     })
//!     .map_err(promises_core::ActionError::from)
//! })
//! .unwrap();
//! ```

#![warn(missing_docs)]

mod catalog;
mod check;
mod clock;
mod environment;
mod error;
mod ids;
mod journal;
mod manager;
mod negotiate;
mod parser;
mod predicate;
mod promise;
mod reaper;
mod schema;

pub use catalog::{status, Catalog};
pub use check::{CheckError, Checker, CheckerStats};
pub use clock::{Clock, ManualClock, SystemClock};
pub use environment::{Environment, ReleaseOption};
pub use error::{ActionError, PromiseError, RejectReason};
pub use ids::{ClientId, InstanceId, PoolId, PromiseId, RequestId};
pub use journal::{
    decode_entry, encode_entry, CheckpointRecord, CheckpointState, CheckpointStats, JournalEntry,
    JournalError, JournalOp, PromiseJournal,
};
pub use manager::{
    CompactionCrash, CompactionReport, LockingMode, OpLatency, PmMetricsSnapshot, PromiseDecision,
    PromiseManager, PromiseRequestSpec, PromiseResponse, RecoveryReport,
};
pub use negotiate::{weaken_predicates, NegotiatedResponse};
pub use parser::{parse_expr, parse_predicate, ParseError};
pub use predicate::{CmpOp, Predicate, PropExpr};
pub use promise::{Allocation, PromiseRecord, PromiseTable};
pub use reaper::ExpiryReaper;
pub use schema::{CheckStrategy, PoolKind, PoolSchema, PropertyDef};
