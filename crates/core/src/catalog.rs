//! The pool catalog: registered schemas and their resource-manager layout.
//!
//! Physical layout conventions:
//!
//! * quantity pools live in one table, [`Catalog::QTY_TABLE`], keyed by
//!   pool name, with an integer `qty` field (the "quantity on hand" /
//!   "account balance" attribute of §3.1);
//! * each instance pool gets its own table `inst:<pool>`, keyed by
//!   instance id; every record carries the reserved status field
//!   [`Catalog::STATUS`] with value `available`, `promised` (allocated-tag
//!   strategies only) or `taken`, mirroring §5's allocated-tags technique.

use std::collections::HashMap;

use promises_rm::{Record, ResourceManager, Txn};

use crate::error::PromiseError;
use crate::ids::{InstanceId, PoolId};
use crate::schema::{PoolKind, PoolSchema};

/// Instance availability states stored in the [`Catalog::STATUS`] field.
pub mod status {
    /// Free for promising and taking.
    pub const AVAILABLE: &str = "available";
    /// Tentatively allocated to a live promise (tag strategies).
    pub const PROMISED: &str = "promised";
    /// Consumed; permanently excluded from all checks.
    pub const TAKEN: &str = "taken";
}

/// Registered pools and their schemas.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    pools: HashMap<PoolId, PoolSchema>,
}

impl Catalog {
    /// The table holding all quantity pools.
    pub const QTY_TABLE: &'static str = "qty_pools";
    /// Reserved status field on instance records.
    pub const STATUS: &'static str = "_status";

    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name of the RM table backing an instance pool.
    pub fn instance_table(pool: &PoolId) -> String {
        format!("inst:{pool}")
    }

    /// Registers a pool schema and creates its backing table(s).
    pub fn register(&mut self, rm: &ResourceManager, schema: PoolSchema) {
        match schema.kind {
            PoolKind::Quantity => rm.create_table(Self::QTY_TABLE),
            PoolKind::Instances => rm.create_table(&Self::instance_table(&schema.id)),
        }
        self.pools.insert(schema.id.clone(), schema);
    }

    /// Looks up a pool schema.
    pub fn get(&self, pool: &PoolId) -> Result<&PoolSchema, PromiseError> {
        self.pools
            .get(pool)
            .ok_or_else(|| PromiseError::UnknownPool(pool.clone()))
    }

    /// True if the pool is registered.
    pub fn contains(&self, pool: &PoolId) -> bool {
        self.pools.contains_key(pool)
    }

    /// All registered pool ids (deterministic order).
    pub fn pool_ids(&self) -> Vec<PoolId> {
        let mut ids: Vec<_> = self.pools.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Sets the quantity on hand for a quantity pool (setup/admin path;
    /// creates the record if missing).
    pub fn set_quantity(
        &self,
        rm: &ResourceManager,
        txn: &Txn,
        pool: &PoolId,
        qty: u64,
    ) -> Result<(), PromiseError> {
        let schema = self.get(pool)?;
        debug_assert_eq!(schema.kind, PoolKind::Quantity);
        rm.put(
            txn,
            Self::QTY_TABLE,
            &pool.0,
            Record::new().with("qty", qty as i64),
        )?;
        Ok(())
    }

    /// Reads the quantity on hand for a quantity pool (0 if unset).
    pub fn quantity(
        &self,
        rm: &ResourceManager,
        txn: &Txn,
        pool: &PoolId,
    ) -> Result<u64, PromiseError> {
        self.get(pool)?;
        let rec = rm.get(txn, Self::QTY_TABLE, &pool.0)?;
        Ok(rec
            .and_then(|r| r.int("qty"))
            .map(|v| v.max(0) as u64)
            .unwrap_or(0))
    }

    /// Adds an instance to an instance pool with the given properties and
    /// status `available`.
    pub fn add_instance(
        &self,
        rm: &ResourceManager,
        txn: &Txn,
        pool: &PoolId,
        id: &InstanceId,
        mut properties: Record,
    ) -> Result<(), PromiseError> {
        let schema = self.get(pool)?;
        debug_assert_eq!(schema.kind, PoolKind::Instances);
        properties.set(Self::STATUS, status::AVAILABLE);
        rm.insert(txn, &Self::instance_table(pool), &id.0, properties)?;
        Ok(())
    }

    /// Reads one instance record.
    pub fn instance(
        &self,
        rm: &ResourceManager,
        txn: &Txn,
        pool: &PoolId,
        id: &InstanceId,
    ) -> Result<Option<Record>, PromiseError> {
        self.get(pool)?;
        Ok(rm.get(txn, &Self::instance_table(pool), &id.0)?)
    }

    /// Scans all instances of a pool as `(id, record)` pairs.
    pub fn instances(
        &self,
        rm: &ResourceManager,
        txn: &Txn,
        pool: &PoolId,
    ) -> Result<Vec<(InstanceId, Record)>, PromiseError> {
        self.get(pool)?;
        Ok(rm
            .scan(txn, &Self::instance_table(pool))?
            .into_iter()
            .map(|(k, r)| (InstanceId(k), r))
            .collect())
    }

    /// Updates the status field of one instance.
    pub fn set_status(
        &self,
        rm: &ResourceManager,
        txn: &Txn,
        pool: &PoolId,
        id: &InstanceId,
        new_status: &str,
    ) -> Result<(), PromiseError> {
        self.get(pool)?;
        rm.update(txn, &Self::instance_table(pool), &id.0, |rec| {
            rec.set(Self::STATUS, new_status);
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::PropertyDef;
    use promises_rm::ResourceManager;

    fn setup() -> (ResourceManager, Catalog) {
        let rm = ResourceManager::new();
        let mut cat = Catalog::new();
        cat.register(&rm, PoolSchema::quantity("widgets"));
        cat.register(
            &rm,
            PoolSchema::instances("rooms", vec![PropertyDef::plain("floor")]),
        );
        (rm, cat)
    }

    #[test]
    fn quantity_roundtrip() {
        let (rm, cat) = setup();
        let pool = PoolId::from("widgets");
        let tx = rm.begin();
        assert_eq!(cat.quantity(&rm, &tx, &pool).unwrap(), 0, "unset reads 0");
        cat.set_quantity(&rm, &tx, &pool, 42).unwrap();
        assert_eq!(cat.quantity(&rm, &tx, &pool).unwrap(), 42);
        rm.commit(tx).unwrap();
    }

    #[test]
    fn instance_lifecycle() {
        let (rm, cat) = setup();
        let pool = PoolId::from("rooms");
        let id = InstanceId::from("512");
        let tx = rm.begin();
        cat.add_instance(&rm, &tx, &pool, &id, Record::new().with("floor", 5i64))
            .unwrap();
        let rec = cat.instance(&rm, &tx, &pool, &id).unwrap().unwrap();
        assert_eq!(rec.str(Catalog::STATUS), Some(status::AVAILABLE));
        assert_eq!(rec.int("floor"), Some(5));
        cat.set_status(&rm, &tx, &pool, &id, status::PROMISED)
            .unwrap();
        let rec = cat.instance(&rm, &tx, &pool, &id).unwrap().unwrap();
        assert_eq!(rec.str(Catalog::STATUS), Some(status::PROMISED));
        assert_eq!(cat.instances(&rm, &tx, &pool).unwrap().len(), 1);
        rm.commit(tx).unwrap();
    }

    #[test]
    fn unknown_pool_is_an_error() {
        let (rm, cat) = setup();
        let tx = rm.begin();
        let missing = PoolId::from("nope");
        assert!(matches!(
            cat.quantity(&rm, &tx, &missing),
            Err(PromiseError::UnknownPool(_))
        ));
        rm.commit(tx).unwrap();
        assert!(!cat.contains(&missing));
        assert!(cat.contains(&PoolId::from("widgets")));
    }

    #[test]
    fn pool_ids_sorted() {
        let (_rm, cat) = setup();
        assert_eq!(
            cat.pool_ids(),
            vec![PoolId::from("rooms"), PoolId::from("widgets")]
        );
    }
}
