//! The durable promise journal.
//!
//! The paper's promise table (§8) is the manager's *only* record of
//! outstanding promises; a crashed manager that forgot it would silently
//! break every guarantee it had granted. This module makes the table
//! recoverable: every state transition — grant, release, expiry, allocation
//! rewrite — is appended to a [`PromiseJournal`] as a generation-stamped
//! [`JournalEntry`], and [`crate::PromiseManager::recover`] rebuilds the
//! table (with its per-pool indexes and quantity aggregates) by replaying
//! the journal idempotently.
//!
//! # Record format
//!
//! Entries are encoded one per line, tab-separated, so the journal is
//! human-inspectable and trivially file-backed. Variable-length string
//! fields (client, request, predicate, instance) are percent-escaped for
//! `%`, tab, CR and LF; predicates use their canonical [`std::fmt::Display`]
//! form, which the crate's parser round-trips (property-tested).
//!
//! ```text
//! seq  gen  G  id  client  request  granted_at  expires_at  np  pred…  na  (idx inst)…
//! seq  gen  P  id  client  request  granted_at  expires_at  np  pred…  na  (idx inst)…
//! seq  gen  C  id                       — commit of a prepared hold
//! seq  gen  R  id                       — release
//! seq  gen  E  id                       — expiry
//! seq  gen  A  id  na  (idx inst)…      — allocation rewrite
//! seq  gen  L  pool  qty                — escrow-lease assignment (absolute)
//! seq  gen  K  next  n  (G|P record…)…  m  (pool qty)…  — checkpoint snapshot
//! ```
//!
//! `P` records a *prepared hold* — a cross-shard grant awaiting its
//! coordinator's decision; it carries the same payload as `G`. `C` marks
//! the hold committed. A `P` with no later `C`/`R`/`E` is an in-doubt hold:
//! recovery keeps it (resources stay reserved, so no other client can be
//! oversold) until the coordinator resolves it or its expiry reaps it.
//!
//! `L` records the manager's *escrow lease* for a pool — the slice of a
//! cluster-wide quantity this shard may grant locally. The value is
//! absolute (last write wins on replay), so a rebalance that crashes
//! between the donor's and the receiver's `L` appends can only *lose*
//! headroom, never mint it: the cluster-wide invariant
//! `Σ leases(pool) ≤ on_hand(pool)` survives any crash point.
//!
//! # Checkpoints and compaction
//!
//! A `K` record is a full snapshot of live manager state at one instant:
//! the promise-id high-water mark (`next`), then `n` embedded records each
//! prefixed by a `G`/`P` sub-tag (the `P` sub-tag preserves the in-doubt
//! prepared mark). [`PromiseJournal::install_checkpoint`] swaps the whole
//! journal for a single checkpoint entry under the journal lock — the
//! in-memory analogue of writing a checkpoint to a temp file and renaming
//! it over the log. Entries appended afterwards form the post-checkpoint
//! suffix; replay restarts its fold whenever it meets a `K` record, so
//! recovery cost is O(live promises + suffix), not O(history). The id
//! high-water mark is carried explicitly because compaction drops the
//! `G`/`R` history of released high-id promises — without it a recovering
//! manager would re-issue their ids.
//!
//! # Generations
//!
//! The journal carries a *generation* counter, bumped at the start of every
//! recovery. Entries a recovering manager appends (in particular `E` records
//! for promises that expired while it was down) carry the new generation, so
//! a journal records how many incarnations of the manager produced it and
//! which entries are recovery decisions rather than client operations.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::ids::{ClientId, InstanceId, PoolId, PromiseId, RequestId};
use crate::parser::parse_predicate;
use crate::promise::{Allocation, PromiseRecord};

/// One journalled promise-table transition.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A promise was granted; carries the full record.
    Grant(PromiseRecord),
    /// A promise was granted as a *prepared hold* for a cross-shard
    /// transaction: resources are reserved exactly like a grant, but the
    /// hold awaits a coordinator commit/abort decision. A `Prepared` record
    /// with no later `CommitPrepared`/`Release`/`Expire` is an *in-doubt*
    /// hold at recovery time.
    Prepared(PromiseRecord),
    /// A coordinator committed a prepared hold: the promise becomes an
    /// ordinary grant.
    CommitPrepared(PromiseId),
    /// A promise was released (explicitly, or consumed by exchange).
    Release(PromiseId),
    /// A promise was reaped by expiry.
    Expire(PromiseId),
    /// A promise's tentative allocations were rewritten by the checker.
    Allocations {
        /// The promise whose allocations changed.
        id: PromiseId,
        /// The new allocation set (replaces the old one wholesale).
        allocations: Vec<Allocation>,
    },
    /// The manager's escrow lease for a pool was set to an absolute
    /// quantity (install, rebalance withdraw, or rebalance deposit).
    Lease {
        /// The leased pool.
        pool: PoolId,
        /// The new lease quantity (absolute, not a delta).
        qty: u64,
    },
    /// A compaction checkpoint: the full live state at one instant.
    /// Replay resets its fold here, so everything before the checkpoint
    /// is dead history.
    Checkpoint(CheckpointState),
}

/// One live promise captured inside a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// True if the promise was a prepared (in-doubt) hold at checkpoint
    /// time — encoded with the `P` sub-tag so recovery restores the mark.
    pub prepared: bool,
    /// The full promise record.
    pub record: PromiseRecord,
}

/// The payload of a [`JournalOp::Checkpoint`]: everything recovery needs
/// to rebuild the table without replaying pre-checkpoint history.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Promise-id high-water mark (the table's last-used id) at checkpoint
    /// time. Carried explicitly so ids of compacted-away promises are
    /// never re-issued after recovery.
    pub next_id: u64,
    /// Every live promise (granted or prepared) at checkpoint time.
    pub live: Vec<CheckpointRecord>,
    /// Escrow leases held at checkpoint time, sorted by pool. Folding
    /// them into `K` lets compaction drop the `L` history while keeping
    /// lease splits recoverable. Encoded as an optional trailing group so
    /// lease-free checkpoints stay byte-compatible with the PR 5 format.
    pub leases: Vec<(PoolId, u64)>,
}

/// What [`PromiseJournal::install_checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Sequence number assigned to the checkpoint entry.
    pub seq: u64,
    /// Journal lines the swap dropped (the compacted-away history).
    pub dropped: usize,
}

/// One journal entry: sequence number, generation stamp, and the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Strictly increasing append order.
    pub seq: u64,
    /// Manager incarnation that wrote the entry (bumped on every recovery).
    pub generation: u64,
    /// The recorded transition.
    pub op: JournalOp,
}

/// A malformed journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// Zero-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for JournalError {}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some('2'), Some('5')) => out.push('%'),
            (Some('0'), Some('9')) => out.push('\t'),
            (Some('0'), Some('A')) => out.push('\n'),
            (Some('0'), Some('D')) => out.push('\r'),
            // Tolerate unknown escapes by passing them through.
            (Some(a), Some(b)) => {
                out.push('%');
                out.push(a);
                out.push(b);
            }
            _ => out.push('%'),
        }
    }
    out
}

fn encode_allocs(out: &mut String, allocations: &[Allocation]) {
    out.push('\t');
    out.push_str(&allocations.len().to_string());
    for a in allocations {
        out.push('\t');
        out.push_str(&a.pred_idx.to_string());
        out.push('\t');
        out.push_str(&escape(&a.instance.0));
    }
}

fn encode_record(out: &mut String, tag: char, rec: &PromiseRecord) {
    out.push_str(&format!(
        "\t{tag}\t{}\t{}\t{}\t{}\t{}\t{}",
        rec.id.0,
        escape(&rec.client.0),
        escape(&rec.request.0),
        rec.granted_at,
        rec.expires_at,
        rec.predicates.len(),
    ));
    for p in &rec.predicates {
        out.push('\t');
        out.push_str(&escape(&p.to_string()));
    }
    encode_allocs(out, &rec.allocations);
}

/// Encodes one entry as its journal line (no trailing newline).
pub fn encode_entry(entry: &JournalEntry) -> String {
    let mut out = format!("{}\t{}", entry.seq, entry.generation);
    match &entry.op {
        JournalOp::Grant(rec) => encode_record(&mut out, 'G', rec),
        JournalOp::Prepared(rec) => encode_record(&mut out, 'P', rec),
        JournalOp::CommitPrepared(id) => out.push_str(&format!("\tC\t{}", id.0)),
        JournalOp::Release(id) => out.push_str(&format!("\tR\t{}", id.0)),
        JournalOp::Expire(id) => out.push_str(&format!("\tE\t{}", id.0)),
        JournalOp::Allocations { id, allocations } => {
            out.push_str(&format!("\tA\t{}", id.0));
            encode_allocs(&mut out, allocations);
        }
        JournalOp::Lease { pool, qty } => {
            out.push_str(&format!("\tL\t{}\t{qty}", escape(&pool.0)));
        }
        JournalOp::Checkpoint(cp) => {
            out.push_str(&format!("\tK\t{}\t{}", cp.next_id, cp.live.len()));
            for item in &cp.live {
                encode_record(
                    &mut out,
                    if item.prepared { 'P' } else { 'G' },
                    &item.record,
                );
            }
            // Trailing lease group, omitted when empty so lease-free
            // checkpoints keep the pre-lease line format.
            if !cp.leases.is_empty() {
                out.push_str(&format!("\t{}", cp.leases.len()));
                for (pool, qty) in &cp.leases {
                    out.push_str(&format!("\t{}\t{qty}", escape(&pool.0)));
                }
            }
        }
    }
    out
}

struct FieldReader<'a> {
    fields: std::str::Split<'a, char>,
    line: usize,
}

impl<'a> FieldReader<'a> {
    fn next(&mut self, what: &str) -> Result<&'a str, JournalError> {
        self.fields.next().ok_or_else(|| JournalError {
            line: self.line,
            detail: format!("missing field: {what}"),
        })
    }

    fn next_u64(&mut self, what: &str) -> Result<u64, JournalError> {
        let raw = self.next(what)?;
        raw.parse().map_err(|_| JournalError {
            line: self.line,
            detail: format!("bad {what}: {raw:?}"),
        })
    }

    fn allocs(&mut self) -> Result<Vec<Allocation>, JournalError> {
        let n = self.next_u64("allocation count")? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let pred_idx = self.next_u64("allocation predicate index")? as usize;
            let instance = InstanceId(unescape(self.next("allocation instance")?));
            out.push(Allocation { pred_idx, instance });
        }
        Ok(out)
    }
}

/// Reads one full promise record (id through allocations) from `r` — the
/// shared payload of `G`/`P` entries and checkpoint-embedded records.
fn read_record(r: &mut FieldReader<'_>) -> Result<PromiseRecord, JournalError> {
    let line = r.line;
    let id = PromiseId(r.next_u64("promise id")?);
    let client = ClientId(unescape(r.next("client")?));
    let request = RequestId(unescape(r.next("request")?));
    let granted_at = r.next_u64("granted_at")?;
    let expires_at = r.next_u64("expires_at")?;
    let np = r.next_u64("predicate count")? as usize;
    let mut predicates = Vec::with_capacity(np);
    for _ in 0..np {
        let text = unescape(r.next("predicate")?);
        predicates.push(parse_predicate(&text).map_err(|e| JournalError {
            line,
            detail: format!("bad predicate {text:?}: {e}"),
        })?);
    }
    let allocations = r.allocs()?;
    Ok(PromiseRecord {
        id,
        client,
        request,
        predicates,
        granted_at,
        expires_at,
        allocations,
    })
}

/// Cheap peek at a line's sequence number (first tab-separated field)
/// without decoding the whole record. Returns `None` for malformed lines.
fn line_seq(raw: &str) -> Option<u64> {
    raw.split('\t').next()?.parse().ok()
}

/// Decodes one journal line (inverse of [`encode_entry`]). `line` is used
/// only for error reporting.
pub fn decode_entry(raw: &str, line: usize) -> Result<JournalEntry, JournalError> {
    let mut r = FieldReader {
        fields: raw.split('\t'),
        line,
    };
    let seq = r.next_u64("seq")?;
    let generation = r.next_u64("generation")?;
    let tag = r.next("op tag")?;
    let op = match tag {
        "G" | "P" => {
            let rec = read_record(&mut r)?;
            if tag == "G" {
                JournalOp::Grant(rec)
            } else {
                JournalOp::Prepared(rec)
            }
        }
        "C" => JournalOp::CommitPrepared(PromiseId(r.next_u64("promise id")?)),
        "R" => JournalOp::Release(PromiseId(r.next_u64("promise id")?)),
        "E" => JournalOp::Expire(PromiseId(r.next_u64("promise id")?)),
        "A" => {
            let id = PromiseId(r.next_u64("promise id")?);
            let allocations = r.allocs()?;
            JournalOp::Allocations { id, allocations }
        }
        "L" => {
            let pool = PoolId(unescape(r.next("lease pool")?));
            let qty = r.next_u64("lease qty")?;
            JournalOp::Lease { pool, qty }
        }
        "K" => {
            let next_id = r.next_u64("checkpoint id high-water")?;
            let n = r.next_u64("checkpoint record count")? as usize;
            let mut live = Vec::with_capacity(n);
            for _ in 0..n {
                let sub = r.next("checkpoint record tag")?;
                let prepared = match sub {
                    "G" => false,
                    "P" => true,
                    other => {
                        return Err(JournalError {
                            line,
                            detail: format!("unknown checkpoint record tag {other:?}"),
                        })
                    }
                };
                live.push(CheckpointRecord {
                    prepared,
                    record: read_record(&mut r)?,
                });
            }
            // Optional trailing lease group; absent on pre-lease lines.
            let leases = match r.fields.next() {
                None => Vec::new(),
                Some(raw) => {
                    let m: usize = raw.parse().map_err(|_| JournalError {
                        line,
                        detail: format!("bad checkpoint lease count: {raw:?}"),
                    })?;
                    let mut leases = Vec::with_capacity(m);
                    for _ in 0..m {
                        let pool = PoolId(unescape(r.next("checkpoint lease pool")?));
                        let qty = r.next_u64("checkpoint lease qty")?;
                        leases.push((pool, qty));
                    }
                    leases
                }
            };
            JournalOp::Checkpoint(CheckpointState {
                next_id,
                live,
                leases,
            })
        }
        other => {
            return Err(JournalError {
                line,
                detail: format!("unknown op tag {other:?}"),
            })
        }
    };
    Ok(JournalEntry {
        seq,
        generation,
        op,
    })
}

struct JournalInner {
    lines: Vec<String>,
    next_seq: u64,
    generation: u64,
    /// Durability watermark: the highest seq covered by a flushed batch.
    /// Appends land *above* this line as buffered (not-yet-durable)
    /// records; [`PromiseJournal::flush_all`] raises it to the tip in one
    /// swap-safe write. Journals rebuilt from dumped lines start fully
    /// flushed — what was read back from disk is durable by definition.
    flushed_seq: u64,
    /// Batched writes performed (one per `flush_all` that had pending
    /// lines, plus one per checkpoint swap).
    flush_writes: u64,
    /// Records covered by those writes; `flushed_records / flush_writes`
    /// is the group-commit amortization factor.
    flushed_records: u64,
}

/// An append-only, generation-stamped journal of promise-table transitions.
///
/// In-memory but line-encoded throughout, so it models (and can be dumped
/// to / loaded from) a durable log file; "crashing" a manager and handing
/// its journal to a fresh one is exactly the durability scenario the
/// recovery tests exercise.
pub struct PromiseJournal {
    inner: Mutex<JournalInner>,
    /// Modeled latency of one durable batch write, slept *outside* the
    /// line buffer's lock so appends proceed while a flush is in flight —
    /// the window group commit amortizes. Zero (the default) models free
    /// storage; benchmarks raise it the same way the shard executor's
    /// modeled service time is raised.
    flush_delay_us: AtomicU64,
}

impl Default for PromiseJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl PromiseJournal {
    /// Creates an empty journal at generation 0.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(JournalInner {
                lines: Vec::new(),
                next_seq: 1,
                generation: 0,
                flushed_seq: 0,
                flush_writes: 0,
                flushed_records: 0,
            }),
            flush_delay_us: AtomicU64::new(0),
        }
    }

    /// Rebuilds a journal from previously dumped lines (e.g. read back
    /// from a file). Sequence and generation counters resume past the
    /// highest values present.
    pub fn from_lines<S: AsRef<str>>(lines: &[S]) -> Result<Self, JournalError> {
        let mut next_seq = 1;
        let mut generation = 0;
        for (i, raw) in lines.iter().enumerate() {
            let entry = decode_entry(raw.as_ref(), i)?;
            next_seq = next_seq.max(entry.seq + 1);
            generation = generation.max(entry.generation);
        }
        Ok(Self {
            inner: Mutex::new(JournalInner {
                lines: lines.iter().map(|s| s.as_ref().to_owned()).collect(),
                next_seq,
                generation,
                flushed_seq: next_seq - 1,
                flush_writes: 0,
                flushed_records: 0,
            }),
            flush_delay_us: AtomicU64::new(0),
        })
    }

    /// Rebuilds a journal from dumped lines, tolerating a *torn trailing
    /// record*: a crash mid-append leaves at most the final line partially
    /// written, so a malformed last line is truncated (not replayed) and
    /// returned for logging, while a malformed *interior* line is still a
    /// hard error — interior corruption is never a torn append and must
    /// not be skipped silently.
    pub fn from_lines_tolerant<S: AsRef<str>>(
        lines: &[S],
    ) -> Result<(Self, Option<JournalError>), JournalError> {
        let mut next_seq = 1;
        let mut generation = 0;
        let mut keep: Vec<String> = Vec::with_capacity(lines.len());
        let mut torn = None;
        let last = lines.len().saturating_sub(1);
        for (i, raw) in lines.iter().enumerate() {
            match decode_entry(raw.as_ref(), i) {
                Ok(entry) => {
                    next_seq = next_seq.max(entry.seq + 1);
                    generation = generation.max(entry.generation);
                    keep.push(raw.as_ref().to_owned());
                }
                Err(e) if i == last => torn = Some(e),
                Err(e) => return Err(e),
            }
        }
        Ok((
            Self {
                inner: Mutex::new(JournalInner {
                    lines: keep,
                    next_seq,
                    generation,
                    flushed_seq: next_seq - 1,
                    flush_writes: 0,
                    flushed_records: 0,
                }),
                flush_delay_us: AtomicU64::new(0),
            },
            torn,
        ))
    }

    /// Atomically swaps the journal's contents for a single checkpoint
    /// entry carrying `state`. The swap happens under the journal lock —
    /// the in-memory analogue of writing the checkpoint to a temp file and
    /// renaming it over the log, so a reader (or a crash) sees either the
    /// full old journal or the checkpointed one, never a mix. The
    /// checkpoint is assigned the next sequence number; entries appended
    /// afterwards form the post-checkpoint suffix replay picks up after
    /// resetting at the `K` record.
    pub fn install_checkpoint(&self, state: CheckpointState) -> CheckpointStats {
        let mut inner = self.inner.lock();
        let dropped = inner.lines.len();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let entry = JournalEntry {
            seq,
            generation: inner.generation,
            op: JournalOp::Checkpoint(state),
        };
        inner.lines = vec![encode_entry(&entry)];
        // The swap is itself one durable write, and it covers every record
        // folded into the checkpoint: nothing below the `K` line can be
        // pending afterwards.
        let covered = (seq - inner.flushed_seq).max(1);
        inner.flushed_seq = seq;
        inner.flush_writes += 1;
        inner.flushed_records += covered;
        CheckpointStats { seq, dropped }
    }

    /// Appends one operation, assigning it the next sequence number and the
    /// current generation. Returns the assigned sequence number.
    pub fn append(&self, op: JournalOp) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let entry = JournalEntry {
            seq,
            generation: inner.generation,
            op,
        };
        let line = encode_entry(&entry);
        inner.lines.push(line);
        seq
    }

    /// Flushes every buffered record in one batched, swap-safe write:
    /// the durability watermark jumps from wherever it was straight to
    /// the current tip, whatever number of concurrent handlers appended
    /// in between. This is the group-commit primitive — callers that need
    /// "my record is durable" wait for *a* flush covering their seq, not
    /// for a write of their own — amortizing the per-write cost exactly
    /// like the checkpoint swap amortizes compaction. Returns the new
    /// flushed watermark (the tip).
    pub fn flush_all(&self) -> u64 {
        // Snapshot the tip first: only records that existed when the
        // write "started" become durable. The modeled write latency is
        // slept outside the lock, so concurrent handlers keep appending
        // behind the in-flight flush — those records stay buffered until
        // the next batch, which is precisely how real group commit
        // accumulates its batches behind a slow fsync.
        let (tip, pending) = {
            let inner = self.inner.lock();
            let tip = inner.next_seq - 1;
            (tip, tip > inner.flushed_seq)
        };
        if pending {
            let delay = self.flush_delay_us.load(Ordering::Relaxed);
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay));
            }
        }
        let mut inner = self.inner.lock();
        if tip > inner.flushed_seq {
            inner.flushed_records += tip - inner.flushed_seq;
            inner.flush_writes += 1;
            inner.flushed_seq = tip;
        }
        tip
    }

    /// Sets the modeled latency of one durable batch write (default 0).
    /// Benchmarks use this the way the shard executor uses modeled
    /// service time: to make the cost being amortized visible on the
    /// wall clock.
    pub fn set_flush_delay_us(&self, us: u64) {
        self.flush_delay_us.store(us, Ordering::Relaxed);
    }

    /// The durability watermark: highest seq covered by a flushed batch.
    /// Records above it are appended but still buffered.
    pub fn flushed_seq(&self) -> u64 {
        self.inner.lock().flushed_seq
    }

    /// `(batched writes, records covered)` since this journal was built.
    /// `records / writes > 1` means group commit is amortizing — multiple
    /// concurrent appends rode one write.
    pub fn flush_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.flush_writes, inner.flushed_records)
    }

    /// The current generation stamp.
    pub fn generation(&self) -> u64 {
        self.inner.lock().generation
    }

    /// Bumps the generation (called at the start of recovery) and returns
    /// the new value.
    pub fn bump_generation(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.generation += 1;
        inner.generation
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().lines.len()
    }

    /// True if no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().lines.is_empty()
    }

    /// The raw encoded lines (what would be written to a log file).
    pub fn lines(&self) -> Vec<String> {
        self.inner.lock().lines.clone()
    }

    /// The highest sequence number assigned so far (0 for a journal that
    /// has never been appended to). This is the replication *tip*: a
    /// follower whose acked watermark equals the tip holds every record.
    pub fn tip_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// The encoded lines with sequence numbers strictly greater than
    /// `watermark`, in append order — one replication segment. Because
    /// sequence numbers keep ascending across [`install_checkpoint`]
    /// (the `K` entry takes the next seq), a follower that last acked a
    /// pre-compaction seq receives the checkpoint plus the tail: exactly
    /// the state it needs, with the dead history already folded away.
    ///
    /// [`install_checkpoint`]: PromiseJournal::install_checkpoint
    pub fn segment_after(&self, watermark: u64) -> Vec<String> {
        let inner = self.inner.lock();
        let start = inner
            .lines
            .partition_point(|l| line_seq(l).is_some_and(|s| s <= watermark));
        inner.lines[start..].to_vec()
    }

    /// Applies one shipped replication segment, idempotently: lines whose
    /// seq the journal already holds are skipped (at-least-once shipping
    /// is safe), a `K` checkpoint line truncates the stored prefix (the
    /// follower-side mirror of [`PromiseJournal::install_checkpoint`]),
    /// and everything else is appended verbatim. Any malformed line is a
    /// hard error — segments are read from an intact leader journal, so
    /// corruption here means the shipping channel itself broke. Returns
    /// the new tip (the acked watermark the follower should report).
    pub fn apply_segment<S: AsRef<str>>(&self, segment: &[S]) -> Result<u64, JournalError> {
        // Decode everything before touching state so a corrupt line never
        // half-applies a segment.
        let decoded = segment
            .iter()
            .enumerate()
            .map(|(i, raw)| decode_entry(raw.as_ref(), i))
            .collect::<Result<Vec<_>, _>>()?;
        let mut inner = self.inner.lock();
        for (entry, raw) in decoded.iter().zip(segment) {
            if entry.seq < inner.next_seq {
                continue; // duplicate delivery of an already-applied record
            }
            if matches!(entry.op, JournalOp::Checkpoint(_)) {
                inner.lines.clear();
            }
            inner.lines.push(raw.as_ref().to_owned());
            inner.next_seq = entry.seq + 1;
            inner.generation = inner.generation.max(entry.generation);
        }
        // A shipped segment is written down as one unit on the standby —
        // applied records are durable there, so a promoted follower's
        // journal starts fully flushed.
        inner.flushed_seq = inner.next_seq - 1;
        Ok(inner.next_seq - 1)
    }

    /// All entries, decoded, in append order.
    pub fn entries(&self) -> Result<Vec<JournalEntry>, JournalError> {
        self.inner
            .lock()
            .lines
            .iter()
            .enumerate()
            .map(|(i, l)| decode_entry(l, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    fn sample_record() -> PromiseRecord {
        PromiseRecord {
            id: PromiseId(7),
            client: ClientId::from("merchant%1\twith tab"),
            request: RequestId::from("order\n42"),
            predicates: vec![
                Predicate::qty_at_least("pink-widgets", 5),
                Predicate::named("rooms", "512"),
            ],
            granted_at: 10,
            expires_at: 5_000,
            allocations: vec![Allocation {
                pred_idx: 1,
                instance: InstanceId::from("512"),
            }],
        }
    }

    #[test]
    fn grant_line_roundtrips() {
        let entry = JournalEntry {
            seq: 3,
            generation: 2,
            op: JournalOp::Grant(sample_record()),
        };
        let line = encode_entry(&entry);
        let back = decode_entry(&line, 0).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn prepared_line_roundtrips() {
        let entry = JournalEntry {
            seq: 5,
            generation: 1,
            op: JournalOp::Prepared(sample_record()),
        };
        let line = encode_entry(&entry);
        assert_eq!(line.split('\t').nth(2), Some("P"));
        assert_eq!(decode_entry(&line, 0).unwrap(), entry);
    }

    #[test]
    fn simple_ops_roundtrip() {
        for op in [
            JournalOp::Release(PromiseId(9)),
            JournalOp::Expire(PromiseId(11)),
            JournalOp::CommitPrepared(PromiseId(13)),
            JournalOp::Allocations {
                id: PromiseId(4),
                allocations: vec![Allocation {
                    pred_idx: 0,
                    instance: InstanceId::from("a%b"),
                }],
            },
        ] {
            let entry = JournalEntry {
                seq: 1,
                generation: 0,
                op,
            };
            assert_eq!(decode_entry(&encode_entry(&entry), 0).unwrap(), entry);
        }
    }

    #[test]
    fn append_assigns_monotonic_seqs_and_generation() {
        let j = PromiseJournal::new();
        assert!(j.is_empty());
        assert_eq!(j.append(JournalOp::Release(PromiseId(1))), 1);
        assert_eq!(j.bump_generation(), 1);
        assert_eq!(j.append(JournalOp::Expire(PromiseId(2))), 2);
        let entries = j.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].generation, 0);
        assert_eq!(entries[1].generation, 1);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn from_lines_resumes_counters() {
        let j = PromiseJournal::new();
        j.append(JournalOp::Grant(sample_record()));
        j.bump_generation();
        j.append(JournalOp::Expire(PromiseId(7)));
        let reloaded = PromiseJournal::from_lines(&j.lines()).unwrap();
        assert_eq!(reloaded.generation(), 1);
        assert_eq!(reloaded.append(JournalOp::Release(PromiseId(7))), 3);
        assert_eq!(reloaded.entries().unwrap().len(), 3);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(decode_entry("not-a-number\t0\tR\t1", 5).is_err());
        assert!(decode_entry("1\t0\tZ\t1", 0).is_err());
        assert!(decode_entry("1\t0\tG\t1\tc", 0).is_err());
        let err = decode_entry("1\t0", 9).unwrap_err();
        assert_eq!(err.line, 9);
    }

    #[test]
    fn escape_unescape_roundtrip() {
        for s in ["plain", "with\ttab", "pct%09literal", "%", "a%2", "\r\n"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }

    #[test]
    fn checkpoint_line_roundtrips() {
        let mut other = sample_record();
        other.id = PromiseId(9);
        other.allocations.clear();
        let entry = JournalEntry {
            seq: 41,
            generation: 3,
            op: JournalOp::Checkpoint(CheckpointState {
                next_id: 40,
                live: vec![
                    CheckpointRecord {
                        prepared: false,
                        record: sample_record(),
                    },
                    CheckpointRecord {
                        prepared: true,
                        record: other,
                    },
                ],
                leases: vec![(PoolId::from("widgets"), 640), (PoolId::from("x%y"), 0)],
            }),
        };
        let line = encode_entry(&entry);
        assert_eq!(line.split('\t').nth(2), Some("K"));
        assert_eq!(decode_entry(&line, 0).unwrap(), entry);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let entry = JournalEntry {
            seq: 1,
            generation: 0,
            op: JournalOp::Checkpoint(CheckpointState {
                next_id: 17,
                live: vec![],
                leases: vec![],
            }),
        };
        assert_eq!(decode_entry(&encode_entry(&entry), 0).unwrap(), entry);
    }

    #[test]
    fn lease_line_roundtrips() {
        let entry = JournalEntry {
            seq: 8,
            generation: 2,
            op: JournalOp::Lease {
                pool: PoolId::from("hot\tpool"),
                qty: 12_500,
            },
        };
        let line = encode_entry(&entry);
        assert_eq!(line.split('\t').nth(2), Some("L"));
        assert_eq!(decode_entry(&line, 0).unwrap(), entry);
    }

    #[test]
    fn pre_lease_checkpoint_lines_still_decode() {
        // A PR 5 checkpoint (no trailing lease group) must decode to an
        // empty lease set, and a lease-free checkpoint must re-encode to
        // the identical pre-lease line.
        let old = JournalEntry {
            seq: 2,
            generation: 1,
            op: JournalOp::Checkpoint(CheckpointState {
                next_id: 9,
                live: vec![CheckpointRecord {
                    prepared: false,
                    record: sample_record(),
                }],
                leases: vec![],
            }),
        };
        let line = encode_entry(&old);
        assert!(!line.ends_with("\t0"), "empty lease group must be omitted");
        assert_eq!(decode_entry(&line, 0).unwrap(), old);
    }

    #[test]
    fn install_checkpoint_swaps_whole_journal() {
        let j = PromiseJournal::new();
        j.append(JournalOp::Grant(sample_record()));
        j.append(JournalOp::Release(PromiseId(7)));
        j.bump_generation();
        let stats = j.install_checkpoint(CheckpointState {
            next_id: 7,
            live: vec![],
            leases: vec![],
        });
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.seq, 3);
        assert_eq!(j.len(), 1);
        // Sequence numbers keep ascending across the swap, and the
        // generation survives it.
        assert_eq!(j.append(JournalOp::Expire(PromiseId(9))), 4);
        let entries = j.entries().unwrap();
        assert!(matches!(entries[0].op, JournalOp::Checkpoint(_)));
        assert_eq!(entries[0].generation, 1);
        // A reload resumes counters past the checkpoint.
        let reloaded = PromiseJournal::from_lines(&j.lines()).unwrap();
        assert_eq!(reloaded.append(JournalOp::Release(PromiseId(9))), 5);
    }

    #[test]
    fn torn_trailing_line_is_truncated() {
        let j = PromiseJournal::new();
        j.append(JournalOp::Grant(sample_record()));
        j.append(JournalOp::Release(PromiseId(7)));
        let mut lines = j.lines();
        let tail = lines.last_mut().unwrap();
        tail.truncate(tail.len() / 2);
        let (reloaded, torn) = PromiseJournal::from_lines_tolerant(&lines).unwrap();
        let torn = torn.expect("torn tail reported");
        assert_eq!(torn.line, 1);
        assert_eq!(reloaded.len(), 1);
        // The truncated record is gone; the next append reuses its seq.
        assert_eq!(reloaded.append(JournalOp::Release(PromiseId(7))), 2);
    }

    #[test]
    fn torn_interior_line_is_still_an_error() {
        let j = PromiseJournal::new();
        j.append(JournalOp::Grant(sample_record()));
        j.append(JournalOp::Release(PromiseId(7)));
        let mut lines = j.lines();
        lines[0].truncate(4);
        assert!(PromiseJournal::from_lines_tolerant(&lines).is_err());
    }

    #[test]
    fn intact_journal_loads_tolerantly_with_no_torn_report() {
        let j = PromiseJournal::new();
        j.append(JournalOp::Grant(sample_record()));
        let (reloaded, torn) = PromiseJournal::from_lines_tolerant(&j.lines()).unwrap();
        assert!(torn.is_none());
        assert_eq!(reloaded.len(), 1);
    }

    #[test]
    fn segment_shipping_replicates_a_journal() {
        let leader = PromiseJournal::new();
        let follower = PromiseJournal::new();
        assert_eq!(leader.tip_seq(), 0);
        assert!(leader.segment_after(0).is_empty());

        leader.append(JournalOp::Grant(sample_record()));
        leader.append(JournalOp::Release(PromiseId(7)));
        let acked = follower.apply_segment(&leader.segment_after(0)).unwrap();
        assert_eq!(acked, leader.tip_seq());
        assert_eq!(follower.lines(), leader.lines());

        // Incremental ship: only the new tail crosses the wire.
        leader.append(JournalOp::Expire(PromiseId(7)));
        let segment = leader.segment_after(acked);
        assert_eq!(segment.len(), 1);
        let acked = follower.apply_segment(&segment).unwrap();
        assert_eq!(acked, 3);
        assert_eq!(follower.lines(), leader.lines());
    }

    #[test]
    fn apply_segment_is_idempotent_under_resend() {
        let leader = PromiseJournal::new();
        let follower = PromiseJournal::new();
        leader.append(JournalOp::Grant(sample_record()));
        leader.append(JournalOp::Release(PromiseId(7)));
        let segment = leader.segment_after(0);
        follower.apply_segment(&segment).unwrap();
        // At-least-once delivery: the duplicate is skipped wholesale.
        let acked = follower.apply_segment(&segment).unwrap();
        assert_eq!(acked, 2);
        assert_eq!(follower.lines(), leader.lines());
        // And the follower can keep appending from the shipped tip.
        assert_eq!(follower.append(JournalOp::Expire(PromiseId(7))), 3);
    }

    #[test]
    fn segment_after_compaction_ships_checkpoint_plus_tail() {
        let leader = PromiseJournal::new();
        let follower = PromiseJournal::new();
        leader.append(JournalOp::Grant(sample_record()));
        let acked = follower.apply_segment(&leader.segment_after(0)).unwrap();
        assert_eq!(acked, 1);

        // Leader compacts: history folds into a K record with seq 4, then
        // keeps appending. The follower last acked seq 1, which no longer
        // exists leader-side — the segment is the checkpoint plus tail.
        leader.append(JournalOp::Release(PromiseId(7)));
        leader.append(JournalOp::Grant(sample_record()));
        leader.install_checkpoint(CheckpointState {
            next_id: 9,
            live: vec![CheckpointRecord {
                prepared: false,
                record: sample_record(),
            }],
            leases: vec![("pink-widgets".into(), 40)],
        });
        leader.append(JournalOp::Expire(PromiseId(7)));
        let segment = leader.segment_after(acked);
        assert_eq!(segment.len(), 2, "checkpoint + tail");
        let acked = follower.apply_segment(&segment).unwrap();
        assert_eq!(acked, leader.tip_seq());
        // The shipped checkpoint truncated the follower's stale prefix.
        assert_eq!(follower.lines(), leader.lines());
        let reloaded = PromiseJournal::from_lines(&follower.lines()).unwrap();
        assert_eq!(reloaded.append(JournalOp::Release(PromiseId(8))), 6);
    }

    #[test]
    fn apply_segment_rejects_corrupt_lines() {
        let follower = PromiseJournal::new();
        let err = follower.apply_segment(&["garbage"]).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(follower.is_empty(), "corrupt segment must not half-apply");
    }

    #[test]
    fn flush_all_batches_pending_appends_into_one_write() {
        let journal = PromiseJournal::new();
        assert_eq!(journal.flushed_seq(), 0);
        assert_eq!(journal.flush_all(), 0, "nothing pending, nothing written");
        assert_eq!(journal.flush_stats(), (0, 0));
        for i in 0..5 {
            journal.append(JournalOp::Release(PromiseId(i)));
        }
        assert_eq!(journal.flushed_seq(), 0, "appends are buffered");
        assert_eq!(journal.flush_all(), 5);
        assert_eq!(journal.flushed_seq(), 5);
        // Five records rode one write: the group-commit amortization.
        assert_eq!(journal.flush_stats(), (1, 5));
        assert_eq!(journal.flush_all(), 5, "idempotent at the tip");
        assert_eq!(journal.flush_stats(), (1, 5));
    }

    #[test]
    fn checkpoint_swap_counts_as_a_durable_write() {
        let journal = PromiseJournal::new();
        journal.append(JournalOp::Release(PromiseId(1)));
        journal.append(JournalOp::Release(PromiseId(2)));
        let stats = journal.install_checkpoint(CheckpointState {
            next_id: 3,
            live: vec![],
            leases: vec![],
        });
        assert_eq!(journal.flushed_seq(), stats.seq);
        let (writes, records) = journal.flush_stats();
        assert_eq!(writes, 1);
        assert_eq!(records, 3, "two folded appends plus the K line");
    }

    #[test]
    fn rebuilt_and_replicated_journals_start_flushed() {
        let leader = PromiseJournal::new();
        leader.append(JournalOp::Release(PromiseId(1)));
        leader.append(JournalOp::Release(PromiseId(2)));
        let reloaded = PromiseJournal::from_lines(&leader.lines()).unwrap();
        assert_eq!(reloaded.flushed_seq(), reloaded.tip_seq());
        let follower = PromiseJournal::new();
        follower.apply_segment(&leader.segment_after(0)).unwrap();
        assert_eq!(follower.flushed_seq(), follower.tip_seq());
    }
}
