//! Footprint-scoped locking tests: disjoint-pool parallelism without
//! deadlock retries, post-checks restricted to written pools, and the
//! lock-wait / check latency counters.

use std::sync::Arc;

use promises_core::{
    ActionError, Catalog, ClientId, Environment, LockingMode, PoolId, PoolSchema, Predicate,
    PromiseManager, PromiseRequestSpec, RequestId, SystemClock,
};
use promises_rm::ResourceManager;

fn pm_with(mode: LockingMode) -> Arc<PromiseManager> {
    Arc::new(
        PromiseManager::new(
            Arc::new(ResourceManager::new()),
            Arc::new(SystemClock::new()),
        )
        .with_locking_mode(mode),
    )
}

fn qty_request(n: &str, pool: &str, amount: u64) -> PromiseRequestSpec {
    PromiseRequestSpec::new(RequestId(n.to_owned()), ClientId("t".into()))
        .predicate(Predicate::qty_at_least(pool, amount))
}

/// Consumes `amount` from `pool` under promise `id` (releasing it).
fn consume(pm: &PromiseManager, id: promises_core::PromiseId, pool: &str, amount: i64) {
    let pool = pool.to_owned();
    pm.execute(&Environment::none().releasing(id), move |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, &pool, |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - amount);
        })
        .map_err(ActionError::from)
    })
    .expect("protected consumption succeeds");
}

/// Threads working entirely disjoint pools never touch a common sync
/// point or data granule under footprint locking, so every operation
/// succeeds on its first attempt: zero deadlock retries.
#[test]
fn disjoint_pools_run_without_deadlock_retries() {
    const THREADS: usize = 8;
    const OPS: u64 = 30;
    let pm = pm_with(LockingMode::Footprint);
    for t in 0..THREADS {
        let pool = format!("pool{t}");
        pm.register_pool(PoolSchema::quantity(pool.as_str()));
        pm.seed_quantity(pool.as_str(), 10 * OPS).unwrap();
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pm = Arc::clone(&pm);
            scope.spawn(move || {
                let pool = format!("pool{t}");
                for i in 0..OPS {
                    let resp = pm
                        .request(qty_request(&format!("{t}-{i}"), &pool, 2))
                        .unwrap();
                    let id = resp
                        .decision
                        .granted_id()
                        .expect("pool never oversubscribed");
                    consume(&pm, id, &pool, 2);
                }
            });
        }
    });

    let m = pm.metrics();
    assert_eq!(m.deadlock_retries, 0, "disjoint footprints never conflict");
    assert_eq!(m.granted, (THREADS as u64) * OPS);
    assert_eq!(m.executions, (THREADS as u64) * OPS);
    assert_eq!(m.violations_rolled_back, 0);
    assert_eq!(pm.live_count(), 0);

    let rm = pm.rm();
    let txn = rm.begin();
    for t in 0..THREADS {
        let left = rm
            .get(&txn, Catalog::QTY_TABLE, &format!("pool{t}"))
            .unwrap()
            .unwrap()
            .int("qty")
            .unwrap();
        assert_eq!(left, (10 * OPS - 2 * OPS) as i64);
    }
    rm.commit(txn).unwrap();
}

/// Threads overlapping on shared pools stay correct under footprint
/// locking: the shared pool is never oversubscribed and every protected
/// consumption succeeds (retries may happen; safety must not give).
#[test]
fn overlapping_pools_stay_correct_under_contention() {
    const THREADS: usize = 6;
    let pm = pm_with(LockingMode::Footprint);
    pm.register_pool(PoolSchema::quantity("shared"));
    pm.seed_quantity("shared", 1_000).unwrap();
    pm.register_pool(PoolSchema::quantity("side"));
    pm.seed_quantity("side", 1_000).unwrap();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pm = Arc::clone(&pm);
            scope.spawn(move || {
                for i in 0..20 {
                    // Alternate between the contended pool and a promise
                    // spanning both pools (overlapping footprints).
                    let spec = if i % 2 == 0 {
                        qty_request(&format!("s{t}-{i}"), "shared", 3)
                    } else {
                        qty_request(&format!("b{t}-{i}"), "shared", 2)
                            .predicate(Predicate::qty_at_least("side", 1))
                    };
                    if let Some(id) = pm.request(spec).unwrap().decision.granted_id() {
                        if i % 4 == 3 {
                            pm.release(id).unwrap();
                        } else {
                            consume(&pm, id, "shared", 2);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(pm.live_count(), 0);
    assert_eq!(pm.metrics().violations_rolled_back, 0);
    let rm = pm.rm();
    let txn = rm.begin();
    let left = rm
        .get(&txn, Catalog::QTY_TABLE, "shared")
        .unwrap()
        .unwrap()
        .int("qty")
        .unwrap();
    rm.commit(txn).unwrap();
    assert!(left >= 0, "shared stock never negative (got {left})");
    assert_eq!(rm.locked_granules(), 0, "no leaked locks");
}

fn seeded_four_pool_pm(mode: LockingMode) -> Arc<PromiseManager> {
    let pm = pm_with(mode);
    for i in 0..4 {
        let pool = format!("p{i}");
        pm.register_pool(PoolSchema::quantity(pool.as_str()));
        pm.seed_quantity(pool.as_str(), 100).unwrap();
        pm.request(qty_request(&format!("r{i}"), &pool, 5))
            .unwrap()
            .decision
            .granted_id()
            .expect("plenty of stock");
    }
    pm
}

fn restock_p0(pm: &PromiseManager) {
    pm.execute(&Environment::none(), |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, "p0", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q + 1);
        })
        .map_err(ActionError::from)
    })
    .unwrap();
}

/// With four pools each holding one promise, an action writing only `p0`
/// must re-check only `p0` — the checker's own counters prove the other
/// three pools were never scanned.
#[test]
fn post_check_visits_only_written_pools() {
    let pm = seeded_four_pool_pm(LockingMode::Footprint);
    restock_p0(&pm);
    let stats = pm.last_check_stats();
    assert_eq!(
        stats.pools_visited,
        vec![PoolId::from("p0")],
        "only the written pool is re-checked"
    );
    assert_eq!(
        stats.promises_considered, 1,
        "only the intersecting promise is snapshotted"
    );
}

/// The global-locking baseline re-checks every pool with a live promise —
/// the contrast that makes the previous test meaningful.
#[test]
fn global_mode_post_check_visits_every_live_pool() {
    let pm = seeded_four_pool_pm(LockingMode::Global);
    restock_p0(&pm);
    let stats = pm.last_check_stats();
    assert_eq!(stats.pools_visited.len(), 4, "whole-table re-check");
    assert_eq!(stats.promises_considered, 4);
}

/// The latency counters actually accumulate: every grant/execute records
/// one lock acquisition and one checking pass.
#[test]
fn latency_counters_accumulate_per_operation() {
    let pm = seeded_four_pool_pm(LockingMode::Footprint);
    restock_p0(&pm);
    let m = pm.metrics();
    assert_eq!(m.grant_lat.lock_wait_ops(), 4);
    assert_eq!(m.grant_lat.check_ops(), 4);
    assert_eq!(m.execute_lat.lock_wait_ops(), 1);
    assert_eq!(m.execute_lat.check_ops(), 1);
    assert_eq!(m.prune_lat.lock_wait_ops(), 0, "nothing expired, fast path");
}

/// Both locking modes make identical decisions on a sequential workload:
/// footprint scoping changes parallelism, never admission semantics.
#[test]
fn modes_agree_on_sequential_decisions() {
    let run = |mode: LockingMode| {
        let pm = pm_with(mode);
        pm.register_pool(PoolSchema::quantity("w"));
        pm.seed_quantity("w", 10).unwrap();
        let mut decisions = Vec::new();
        let mut granted = Vec::new();
        for i in 0..6 {
            let resp = pm.request(qty_request(&format!("r{i}"), "w", 3)).unwrap();
            decisions.push(resp.decision.is_granted());
            if let Some(id) = resp.decision.granted_id() {
                granted.push(id);
            }
        }
        // Release one, then a grant that only now fits.
        pm.release(granted[0]).unwrap();
        let resp = pm.request(qty_request("again", "w", 3)).unwrap();
        decisions.push(resp.decision.is_granted());
        decisions
    };
    assert_eq!(run(LockingMode::Footprint), run(LockingMode::Global));
}
