//! Integration tests for the promise manager: the paper's §2–§5 semantics
//! exercised end-to-end against the embedded resource manager.

use std::sync::Arc;

use promises_core::{
    status, Catalog, CheckStrategy, ClientId, Environment, ManualClock, PoolSchema, Predicate,
    PromiseDecision, PromiseError, PromiseManager, PromiseRequestSpec, PropExpr, PropertyDef,
    RejectReason,
};
use promises_rm::{Record, ResourceManager};

fn new_pm() -> (Arc<PromiseManager>, Arc<ManualClock>) {
    let rm = Arc::new(ResourceManager::new());
    let clock = Arc::new(ManualClock::new());
    let pm = Arc::new(PromiseManager::new(rm, Arc::clone(&clock) as _));
    (pm, clock)
}

fn spec(req: &str, preds: Vec<Predicate>) -> PromiseRequestSpec {
    let mut s = PromiseRequestSpec::new(req, "client");
    s.predicates = preds;
    s
}

fn grant(pm: &PromiseManager, req: &str, preds: Vec<Predicate>) -> promises_core::PromiseId {
    pm.request(spec(req, preds))
        .unwrap()
        .decision
        .granted_id()
        .unwrap_or_else(|| panic!("request {req} should be granted"))
}

fn reject_reason(pm: &PromiseManager, req: &str, preds: Vec<Predicate>) -> RejectReason {
    match pm.request(spec(req, preds)).unwrap().decision {
        PromiseDecision::Rejected { reason } => reason,
        PromiseDecision::Granted { .. } => panic!("request {req} should be rejected"),
    }
}

fn widgets_pm(initial: u64) -> Arc<PromiseManager> {
    let (pm, _) = new_pm();
    pm.register_pool(PoolSchema::quantity("widgets"));
    pm.seed_quantity("widgets", initial).unwrap();
    pm
}

fn hotel_pm(strategy: CheckStrategy) -> Arc<PromiseManager> {
    let (pm, _) = new_pm();
    pm.register_pool(
        PoolSchema::instances(
            "rooms",
            vec![
                PropertyDef::plain("floor"),
                PropertyDef::plain("view"),
                PropertyDef::ordered("class", &["standard", "deluxe", "suite"]),
            ],
        )
        .with_strategy(strategy),
    );
    // Room 512: 5th floor with view; 610: view, 6th floor; 101: neither.
    for (id, floor, view, class) in [
        ("512", 5i64, true, "standard"),
        ("610", 6i64, true, "deluxe"),
        ("101", 1i64, false, "standard"),
    ] {
        pm.seed_instance(
            "rooms",
            id,
            Record::new()
                .with("floor", floor)
                .with("view", view)
                .with("class", class),
        )
        .unwrap();
    }
    pm
}

// ---------------------------------------------------------------------
// Anonymous view (§3.1)
// ---------------------------------------------------------------------

#[test]
fn anonymous_grants_until_quantity_exhausted() {
    let pm = widgets_pm(10);
    grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 5)]);
    grant(&pm, "b", vec![Predicate::qty_at_least("widgets", 5)]);
    let reason = reject_reason(&pm, "c", vec![Predicate::qty_at_least("widgets", 1)]);
    assert!(matches!(
        reason,
        RejectReason::InsufficientQuantity {
            on_hand: 10,
            demanded: 11,
            ..
        }
    ));
    assert_eq!(pm.live_count(), 2);
    assert_eq!(pm.metrics().granted, 2);
    assert_eq!(pm.metrics().rejected, 1);
}

#[test]
fn release_frees_anonymous_capacity() {
    let pm = widgets_pm(10);
    let a = grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 10)]);
    assert!(matches!(
        reject_reason(&pm, "b", vec![Predicate::qty_at_least("widgets", 1)]),
        RejectReason::InsufficientQuantity { .. }
    ));
    pm.release(a).unwrap();
    grant(&pm, "c", vec![Predicate::qty_at_least("widgets", 10)]);
}

#[test]
fn figure1_order_flow_purchase_under_promise_with_release() {
    // The Figure 1 walkthrough: promise 5 widgets, buy them, release.
    let pm = widgets_pm(7);
    let p = grant(&pm, "order", vec![Predicate::qty_at_least("widgets", 5)]);
    // A concurrent order for the remaining 2 can coexist.
    grant(&pm, "other", vec![Predicate::qty_at_least("widgets", 2)]);
    // Purchase: decrement stock by 5 and release atomically.
    pm.execute(&Environment::none().releasing(p), |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - 5);
        })
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
    assert_eq!(pm.live_count(), 1);
    // Remaining stock (2) still covers the other promise, but nothing more.
    assert!(matches!(
        reject_reason(&pm, "late", vec![Predicate::qty_at_least("widgets", 1)]),
        RejectReason::InsufficientQuantity {
            on_hand: 2,
            demanded: 3,
            ..
        }
    ));
}

#[test]
fn unprotected_action_violating_promise_is_rolled_back() {
    let pm = widgets_pm(10);
    let p = grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 8)]);
    // A rogue action (no environment) tries to take 5: would leave 5 < 8.
    let err = pm
        .execute(&Environment::none(), |rm, txn| {
            rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
                let q = r.int("qty").unwrap();
                r.set("qty", q - 5);
            })
            .map_err(promises_core::ActionError::from)
        })
        .unwrap_err();
    match err {
        PromiseError::ViolationRolledBack { violated, .. } => assert_eq!(violated, p),
        other => panic!("expected violation, got {other:?}"),
    }
    // State was rolled back.
    let rm = pm.rm();
    let txn = rm.begin();
    assert_eq!(
        rm.get(&txn, Catalog::QTY_TABLE, "widgets")
            .unwrap()
            .unwrap()
            .int("qty"),
        Some(10)
    );
    rm.commit(txn).unwrap();
    assert_eq!(pm.metrics().violations_rolled_back, 1);
}

#[test]
fn action_within_unpromised_slack_is_allowed() {
    let pm = widgets_pm(10);
    grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 4)]);
    // Taking 6 leaves exactly 4: allowed.
    pm.execute(&Environment::none(), |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - 6);
        })
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// Named view (§3.2)
// ---------------------------------------------------------------------

#[test]
fn named_instance_promised_once_only() {
    for strategy in [
        CheckStrategy::Satisfiability,
        CheckStrategy::AllocatedTags,
        CheckStrategy::TentativeAllocation,
    ] {
        let pm = hotel_pm(strategy);
        grant(&pm, "a", vec![Predicate::named("rooms", "512")]);
        let reason = reject_reason(&pm, "b", vec![Predicate::named("rooms", "512")]);
        assert!(
            matches!(
                reason,
                RejectReason::InstanceUnavailable { .. } | RejectReason::Unsatisfiable { .. }
            ),
            "strategy {strategy:?}: got {reason:?}"
        );
        // A different room is still promisable.
        grant(&pm, "c", vec![Predicate::named("rooms", "610")]);
    }
}

#[test]
fn named_promise_excluded_from_property_pool_count() {
    // §3.2: a seat promised by name must not be counted toward an
    // anonymous/property promise over the same pool.
    let pm = hotel_pm(CheckStrategy::Satisfiability);
    grant(&pm, "named", vec![Predicate::named("rooms", "512")]);
    // Only 610 still has a view.
    grant(
        &pm,
        "view1",
        vec![Predicate::property("rooms", PropExpr::eq("view", true), 1)],
    );
    let reason = reject_reason(
        &pm,
        "view2",
        vec![Predicate::property("rooms", PropExpr::eq("view", true), 1)],
    );
    assert!(matches!(reason, RejectReason::Unsatisfiable { .. }));
}

#[test]
fn taken_instance_cannot_be_promised() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    // Take room 512 directly (unprotected but violating nothing).
    pm.execute(&Environment::none(), |rm, txn| {
        rm.update(txn, &Catalog::instance_table(&"rooms".into()), "512", |r| {
            r.set(Catalog::STATUS, status::TAKEN);
        })
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
    let reason = reject_reason(&pm, "a", vec![Predicate::named("rooms", "512")]);
    assert!(matches!(reason, RejectReason::InstanceUnavailable { .. }));
}

// ---------------------------------------------------------------------
// Property view (§3.3) and §5 strategies
// ---------------------------------------------------------------------

#[test]
fn paper_example_view_then_fifth_floor() {
    // §5 tentative allocation: a view request may grab 512; the 5th-floor
    // request must still be granted by re-arranging.
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    grant(
        &pm,
        "view",
        vec![Predicate::property("rooms", PropExpr::eq("view", true), 1)],
    );
    grant(
        &pm,
        "fifth",
        vec![Predicate::property("rooms", PropExpr::eq("floor", 5i64), 1)],
    );
    // 512 is the only 5th-floor room, so it must now be held by "fifth".
}

#[test]
fn satisfiability_grants_what_rearrangement_allows() {
    let pm = hotel_pm(CheckStrategy::Satisfiability);
    grant(
        &pm,
        "view",
        vec![Predicate::property("rooms", PropExpr::eq("view", true), 1)],
    );
    grant(
        &pm,
        "fifth",
        vec![Predicate::property("rooms", PropExpr::eq("floor", 5i64), 1)],
    );
}

#[test]
fn allocated_tags_strategy_may_reject_feasible_requests() {
    // The strict tag strategy never re-arranges: if the view request was
    // allocated room 512 (the scan order favours 101 < 512 < 610, and 512
    // is the first matching view room), the 5th-floor request fails even
    // though re-arrangement could satisfy it.
    let pm = hotel_pm(CheckStrategy::AllocatedTags);
    grant(
        &pm,
        "view",
        vec![Predicate::property("rooms", PropExpr::eq("view", true), 1)],
    );
    let decision = pm
        .request(spec(
            "fifth",
            vec![Predicate::property("rooms", PropExpr::eq("floor", 5i64), 1)],
        ))
        .unwrap()
        .decision;
    assert!(
        !decision.is_granted(),
        "strict tags allocated 512 to the view request and cannot re-arrange"
    );
}

#[test]
fn multi_instance_property_promise_needs_distinct_rooms() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    grant(
        &pm,
        "two-rooms",
        vec![Predicate::property("rooms", PropExpr::True, 2)],
    );
    grant(
        &pm,
        "one-more",
        vec![Predicate::property("rooms", PropExpr::True, 1)],
    );
    let reason = reject_reason(
        &pm,
        "overflow",
        vec![Predicate::property("rooms", PropExpr::True, 1)],
    );
    assert!(matches!(reason, RejectReason::Unsatisfiable { .. }));
}

#[test]
fn ordered_or_better_promise() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    // Two deluxe-or-better promises: 610 (deluxe) is the only match among
    // 512/101 (standard) — second must fail.
    grant(
        &pm,
        "a",
        vec![Predicate::property(
            "rooms",
            PropExpr::at_least("class", "deluxe"),
            1,
        )],
    );
    let reason = reject_reason(
        &pm,
        "b",
        vec![Predicate::property(
            "rooms",
            PropExpr::at_least("class", "deluxe"),
            1,
        )],
    );
    assert!(matches!(reason, RejectReason::Unsatisfiable { .. }));
}

#[test]
fn taking_a_promised_room_under_release_succeeds() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    let p = grant(&pm, "book", vec![Predicate::named("rooms", "512")]);
    pm.execute(&Environment::none().releasing(p), |rm, txn| {
        rm.update(txn, &Catalog::instance_table(&"rooms".into()), "512", |r| {
            r.set(Catalog::STATUS, status::TAKEN);
        })
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
    assert_eq!(pm.live_count(), 0);
    // 512 is gone for good.
    let reason = reject_reason(&pm, "again", vec![Predicate::named("rooms", "512")]);
    assert!(matches!(reason, RejectReason::InstanceUnavailable { .. }));
}

#[test]
fn taking_someone_elses_promised_room_rolls_back() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    let p = grant(&pm, "book", vec![Predicate::named("rooms", "512")]);
    let err = pm
        .execute(&Environment::none(), |rm, txn| {
            rm.update(txn, &Catalog::instance_table(&"rooms".into()), "512", |r| {
                r.set(Catalog::STATUS, status::TAKEN);
            })
            .map_err(promises_core::ActionError::from)
        })
        .unwrap_err();
    assert!(matches!(err, PromiseError::ViolationRolledBack { violated, .. } if violated == p));
    // The room is still promised (rollback restored it).
    let rm = pm.rm();
    let txn = rm.begin();
    let rec = rm
        .get(&txn, &Catalog::instance_table(&"rooms".into()), "512")
        .unwrap()
        .unwrap();
    assert_eq!(rec.str(Catalog::STATUS), Some(status::PROMISED));
    rm.commit(txn).unwrap();
}

#[test]
fn post_action_rearrangement_absorbs_property_change() {
    // A promise for "a view room" is tentatively on some room; if an
    // action takes the *other* view room outright, re-arrangement keeps
    // the promise satisfiable... unless no view room remains.
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    grant(
        &pm,
        "view",
        vec![Predicate::property("rooms", PropExpr::eq("view", true), 1)],
    );
    // Take room 610 (a view room the promise may or may not hold).
    pm.execute(&Environment::none(), |rm, txn| {
        rm.update(txn, &Catalog::instance_table(&"rooms".into()), "610", |r| {
            r.set(Catalog::STATUS, status::TAKEN);
        })
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
    // Now only 512 has a view and it must be promised to "view".
    let reason = reject_reason(&pm, "fifth", vec![Predicate::named("rooms", "512")]);
    assert!(matches!(
        reason,
        RejectReason::InstanceUnavailable { .. } | RejectReason::Unsatisfiable { .. }
    ));
}

// ---------------------------------------------------------------------
// §4 atomicity
// ---------------------------------------------------------------------

#[test]
fn multi_predicate_request_is_all_or_nothing() {
    let (pm, _) = new_pm();
    pm.register_pool(PoolSchema::quantity("flights"));
    pm.register_pool(PoolSchema::quantity("cars"));
    pm.seed_quantity("flights", 1).unwrap();
    pm.seed_quantity("cars", 0).unwrap();
    //

    let reason = reject_reason(
        &pm,
        "travel",
        vec![
            Predicate::qty_at_least("flights", 1),
            Predicate::qty_at_least("cars", 1),
        ],
    );
    assert!(matches!(reason, RejectReason::InsufficientQuantity { .. }));
    // The flight was NOT partially promised.
    grant(
        &pm,
        "flight-only",
        vec![Predicate::qty_at_least("flights", 1)],
    );
}

#[test]
fn failed_action_retains_promises_scheduled_for_release() {
    // §4: "if the purchase fails ... the promise should remain in force."
    let pm = widgets_pm(10);
    let p = grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 5)]);
    let err = pm
        .execute(&Environment::none().releasing(p), |_rm, _txn| {
            Err::<(), _>(promises_core::ActionError::App(
                "no shipper available today".into(),
            ))
        })
        .unwrap_err();
    assert!(matches!(err, PromiseError::ActionFailed(_)));
    assert_eq!(pm.live_count(), 1, "promise retained after action failure");
    assert_eq!(pm.metrics().action_failures, 1);
}

#[test]
fn modify_upgrades_atomically_without_double_counting() {
    // §4: balance>=100 upgraded to balance>=200 must not require 300.
    let (pm, _) = new_pm();
    pm.register_pool(PoolSchema::quantity("balance"));
    pm.seed_quantity("balance", 200).unwrap();
    let old = grant(
        &pm,
        "hold-100",
        vec![Predicate::qty_at_least("balance", 100)],
    );
    let resp = pm
        .modify(
            &[old],
            spec("hold-200", vec![Predicate::qty_at_least("balance", 200)]),
        )
        .unwrap();
    assert!(
        resp.decision.is_granted(),
        "upgrade within funds must grant"
    );
    assert_eq!(pm.live_count(), 1, "old promise released atomically");
}

#[test]
fn failed_modify_retains_old_promise() {
    let (pm, _) = new_pm();
    pm.register_pool(PoolSchema::quantity("balance"));
    pm.seed_quantity("balance", 150).unwrap();
    let old = grant(
        &pm,
        "hold-100",
        vec![Predicate::qty_at_least("balance", 100)],
    );
    let resp = pm
        .modify(
            &[old],
            spec("hold-200", vec![Predicate::qty_at_least("balance", 200)]),
        )
        .unwrap();
    assert!(!resp.decision.is_granted());
    assert!(pm.promise(old).is_some(), "old promise retained on failure");
    // Weakening still works.
    let resp = pm
        .modify(
            &[old],
            spec("hold-50", vec![Predicate::qty_at_least("balance", 50)]),
        )
        .unwrap();
    assert!(resp.decision.is_granted());
    assert!(pm.promise(old).is_none());
}

#[test]
fn modify_with_unknown_exchange_rejects() {
    let pm = widgets_pm(10);
    let resp = pm
        .modify(
            &[promises_core::PromiseId(999)],
            spec("x", vec![Predicate::qty_at_least("widgets", 1)]),
        )
        .unwrap();
    assert!(matches!(
        resp.decision,
        PromiseDecision::Rejected {
            reason: RejectReason::UnknownExchange(_)
        }
    ));
}

#[test]
fn modify_tagged_promise_reuses_its_own_instances() {
    // Exchanging a 2-room promise for a 3-room promise must reuse the two
    // rooms the old promise held.
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    let old = grant(
        &pm,
        "two",
        vec![Predicate::property("rooms", PropExpr::True, 2)],
    );
    let resp = pm
        .modify(
            &[old],
            spec(
                "three",
                vec![Predicate::property("rooms", PropExpr::True, 3)],
            ),
        )
        .unwrap();
    assert!(resp.decision.is_granted());
    assert_eq!(pm.live_count(), 1);
}

// ---------------------------------------------------------------------
// Expiry (§2/§6)
// ---------------------------------------------------------------------

#[test]
fn expired_promise_gives_promise_expired_error() {
    let (pm, clock) = new_pm();
    pm.register_pool(PoolSchema::quantity("widgets"));
    pm.seed_quantity("widgets", 10).unwrap();
    let resp = pm
        .request(spec("a", vec![Predicate::qty_at_least("widgets", 5)]).duration_ms(1_000))
        .unwrap();
    let p = resp.decision.granted_id().unwrap();
    clock.advance(2_000);
    let err = pm
        .execute(&Environment::none().under(p), |_rm, _txn| Ok(()))
        .unwrap_err();
    assert!(matches!(err, PromiseError::PromiseExpired(id) if id == p));
    assert!(pm.metrics().expired_errors >= 1);
}

#[test]
fn expiry_frees_capacity_and_tags() {
    let (pm, clock) = new_pm();
    pm.register_pool(PoolSchema::quantity("widgets"));
    pm.seed_quantity("widgets", 10).unwrap();
    pm.register_pool(
        PoolSchema::instances("rooms", vec![PropertyDef::plain("floor")])
            .with_strategy(CheckStrategy::TentativeAllocation),
    );
    pm.seed_instance("rooms", "r1", Record::new().with("floor", 1i64))
        .unwrap();

    pm.request(
        spec(
            "short",
            vec![
                Predicate::qty_at_least("widgets", 10),
                Predicate::named("rooms", "r1"),
            ],
        )
        .duration_ms(1_000),
    )
    .unwrap()
    .decision
    .granted_id()
    .unwrap();

    // While live, everything is booked out.
    assert!(matches!(
        reject_reason(&pm, "b", vec![Predicate::qty_at_least("widgets", 1)]),
        RejectReason::InsufficientQuantity { .. }
    ));
    clock.advance(5_000);
    // Lazy pruning frees both quantity and the tagged room.
    grant(&pm, "c", vec![Predicate::qty_at_least("widgets", 10)]);
    grant(&pm, "d", vec![Predicate::named("rooms", "r1")]);
    assert_eq!(pm.metrics().expired_reaped, 1);
}

#[test]
fn manager_caps_duration() {
    let rm = Arc::new(ResourceManager::new());
    let clock = Arc::new(ManualClock::new());
    let pm = PromiseManager::new(rm, clock).with_max_duration_ms(500);
    pm.register_pool(PoolSchema::quantity("w"));
    pm.seed_quantity("w", 1).unwrap();
    let resp = pm
        .request(spec("a", vec![Predicate::qty_at_least("w", 1)]).duration_ms(1_000_000))
        .unwrap();
    match resp.decision {
        PromiseDecision::Granted { expires_at, .. } => {
            assert_eq!(expires_at, 500, "granted duration shortened by manager")
        }
        _ => panic!("should grant"),
    }
}

// ---------------------------------------------------------------------
// Delegation (§5)
// ---------------------------------------------------------------------

fn delegated_pair() -> (Arc<PromiseManager>, Arc<PromiseManager>) {
    // Distributor holds the actual stock; merchant delegates backorders.
    let (distributor, _) = new_pm();
    distributor.register_pool(PoolSchema::quantity("backorders"));
    distributor.seed_quantity("backorders", 5).unwrap();

    let (merchant, _) = new_pm();
    merchant.register_pool(PoolSchema::quantity("stock"));
    merchant.seed_quantity("stock", 2).unwrap();
    merchant.delegate_pool("backorders", Arc::clone(&distributor));
    (merchant, distributor)
}

#[test]
fn delegated_promise_backed_by_upstream() {
    let (merchant, distributor) = delegated_pair();
    let p = grant(
        &merchant,
        "order",
        vec![
            Predicate::qty_at_least("stock", 2),
            Predicate::qty_at_least("backorders", 3),
        ],
    );
    assert_eq!(distributor.live_count(), 1, "upstream promise exists");
    merchant.release(p).unwrap();
    assert_eq!(distributor.live_count(), 0, "release cascades upstream");
}

#[test]
fn upstream_rejection_rejects_whole_request_and_compensates() {
    let (merchant, distributor) = delegated_pair();
    let reason = reject_reason(
        &merchant,
        "big",
        vec![
            Predicate::qty_at_least("stock", 1),
            Predicate::qty_at_least("backorders", 100),
        ],
    );
    assert!(matches!(reason, RejectReason::UpstreamRejected { .. }));
    assert_eq!(distributor.live_count(), 0);
    assert_eq!(merchant.live_count(), 0);
}

#[test]
fn local_rejection_releases_upstream_promises() {
    let (merchant, distributor) = delegated_pair();
    let reason = reject_reason(
        &merchant,
        "impossible",
        vec![
            Predicate::qty_at_least("stock", 100),
            Predicate::qty_at_least("backorders", 1),
        ],
    );
    assert!(matches!(reason, RejectReason::InsufficientQuantity { .. }));
    assert_eq!(
        distributor.live_count(),
        0,
        "upstream promise compensated away"
    );
}

// ---------------------------------------------------------------------
// Misc errors & metrics
// ---------------------------------------------------------------------

#[test]
fn unknown_pool_rejects() {
    let (pm, _) = new_pm();
    let reason = reject_reason(&pm, "a", vec![Predicate::qty_at_least("ghost", 1)]);
    assert!(matches!(reason, RejectReason::UnknownPool(_)));
}

#[test]
fn unknown_promise_operations_error() {
    let (pm, _) = new_pm();
    let id = promises_core::PromiseId(42);
    assert!(matches!(
        pm.release(id).unwrap_err(),
        PromiseError::UnknownPromise(_)
    ));
    assert!(matches!(
        pm.execute(&Environment::none().under(id), |_rm, _txn| Ok(()))
            .unwrap_err(),
        PromiseError::UnknownPromise(_)
    ));
}

#[test]
fn zero_quantity_promise_always_grants() {
    let pm = widgets_pm(0);
    grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 0)]);
}

#[test]
fn empty_predicate_request_grants_trivially() {
    let (pm, _) = new_pm();
    grant(&pm, "empty", vec![]);
    assert_eq!(pm.live_count(), 1);
}

#[test]
fn client_identity_recorded() {
    let pm = widgets_pm(5);
    let p = grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 1)]);
    let rec = pm.promise(p).unwrap();
    assert_eq!(rec.client, ClientId::from("client"));
    assert_eq!(rec.request.0, "a");
}

// ---------------------------------------------------------------------
// Negotiation (§3.3)
// ---------------------------------------------------------------------

#[test]
fn negotiation_drops_desirables_until_grantable() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    // Essential: a room. Desirable: suite class AND 9th floor (impossible).
    let full = Predicate::property(
        "rooms",
        PropExpr::all([
            PropExpr::True,
            PropExpr::eq("floor", 9i64).desirable(),
            PropExpr::at_least("class", "suite").desirable(),
        ]),
        1,
    );
    let resp = pm
        .request_negotiated(spec("negotiate", vec![full]))
        .unwrap();
    assert!(resp.response.decision.is_granted());
    assert_eq!(
        resp.total_dropped(),
        2,
        "both impossible desirables dropped"
    );
}

#[test]
fn negotiation_grants_full_request_when_possible() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    let full = Predicate::property(
        "rooms",
        PropExpr::all([
            PropExpr::eq("view", true),
            PropExpr::at_least("class", "deluxe").desirable(),
        ]),
        1,
    );
    let resp = pm.request_negotiated(spec("n", vec![full])).unwrap();
    assert!(resp.response.decision.is_granted());
    assert_eq!(resp.total_dropped(), 0);
}

#[test]
fn negotiation_rejects_when_essentials_unsatisfiable() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    let full = Predicate::property(
        "rooms",
        PropExpr::all([
            PropExpr::eq("floor", 99i64),
            PropExpr::eq("view", true).desirable(),
        ]),
        1,
    );
    let resp = pm.request_negotiated(spec("n", vec![full])).unwrap();
    assert!(!resp.response.decision.is_granted());
    assert_eq!(
        resp.total_dropped(),
        1,
        "desirable was dropped in the attempt"
    );
}

// ---------------------------------------------------------------------
// Scope enforcement (§2's "the restrictions could be enforced")
// ---------------------------------------------------------------------

#[test]
fn scoped_action_within_promised_pool_succeeds() {
    let pm = widgets_pm(10);
    let p = grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 5)]);
    pm.execute_scoped(&Environment::none().releasing(p), |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - 5);
        })
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
}

#[test]
fn scoped_action_on_unpromised_pool_is_rejected_and_rolled_back() {
    let (pm, _) = new_pm();
    pm.register_pool(PoolSchema::quantity("pink"));
    pm.register_pool(PoolSchema::quantity("blue"));
    pm.seed_quantity("pink", 10).unwrap();
    pm.seed_quantity("blue", 10).unwrap();
    let p = grant(&pm, "a", vec![Predicate::qty_at_least("pink", 5)]);

    // The §2 anti-example: using the pink promise to take blue widgets.
    let err = pm
        .execute_scoped(&Environment::none().under(p), |rm, txn| {
            rm.update(txn, Catalog::QTY_TABLE, "blue", |r| {
                let q = r.int("qty").unwrap();
                r.set("qty", q - 5);
            })
            .map_err(promises_core::ActionError::from)
        })
        .unwrap_err();
    assert!(
        matches!(&err, PromiseError::ScopeViolation { pool } if pool.0 == "blue"),
        "got {err:?}"
    );
    // Rolled back: blue stock intact.
    let rm = pm.rm();
    let txn = rm.begin();
    assert_eq!(
        rm.get(&txn, Catalog::QTY_TABLE, "blue")
            .unwrap()
            .unwrap()
            .int("qty"),
        Some(10)
    );
    rm.commit(txn).unwrap();
}

#[test]
fn scoped_action_may_write_non_pool_tables() {
    let pm = widgets_pm(10);
    pm.rm().create_table("audit-log");
    let p = grant(&pm, "a", vec![Predicate::qty_at_least("widgets", 5)]);
    pm.execute_scoped(&Environment::none().releasing(p), |rm, txn| {
        rm.update(txn, Catalog::QTY_TABLE, "widgets", |r| {
            let q = r.int("qty").unwrap();
            r.set("qty", q - 5);
        })
        .map_err(promises_core::ActionError::from)?;
        rm.insert(
            txn,
            "audit-log",
            "entry-1",
            promises_rm::Record::new().with("what", "sold 5"),
        )
        .map_err(promises_core::ActionError::from)
    })
    .unwrap();
}

#[test]
fn scoped_instance_pool_writes_are_checked_too() {
    let pm = hotel_pm(CheckStrategy::TentativeAllocation);
    // No promises at all: touching the rooms pool under scope must fail.
    let err = pm
        .execute_scoped(&Environment::none(), |rm, txn| {
            rm.update(txn, &Catalog::instance_table(&"rooms".into()), "101", |r| {
                r.set(Catalog::STATUS, status::TAKEN);
            })
            .map_err(promises_core::ActionError::from)
        })
        .unwrap_err();
    assert!(matches!(err, PromiseError::ScopeViolation { .. }));
}
