//! Concurrency stress tests: many threads hammering one promise manager,
//! verifying the §8 safety guarantees hold under real interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promises_core::{
    status, ActionError, Catalog, CheckStrategy, Environment, PoolId, PoolSchema, Predicate,
    PromiseManager, PromiseRequestSpec, PropExpr, PropertyDef, SystemClock,
};
use promises_rm::{Record, ResourceManager};

fn new_pm() -> Arc<PromiseManager> {
    Arc::new(PromiseManager::new(
        Arc::new(ResourceManager::new()),
        Arc::new(SystemClock::new()),
    ))
}

/// Every granted named-room promise must end in exactly one successful
/// booking; no room is ever booked twice.
#[test]
fn named_rooms_booked_exactly_once_under_contention() {
    let pm = new_pm();
    pm.register_pool(
        PoolSchema::instances("rooms", vec![PropertyDef::plain("floor")])
            .with_strategy(CheckStrategy::TentativeAllocation),
    );
    const ROOMS: usize = 24;
    for i in 0..ROOMS {
        pm.seed_instance(
            "rooms",
            format!("r{i}").as_str(),
            Record::new().with("floor", 1i64),
        )
        .unwrap();
    }

    let bookings = Arc::new(AtomicU64::new(0));
    let threads = 8;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let pm = Arc::clone(&pm);
            let bookings = Arc::clone(&bookings);
            scope.spawn(move || {
                for i in 0..ROOMS {
                    let room = format!("r{}", (t * 7 + i) % ROOMS);
                    let resp = pm
                        .request(
                            PromiseRequestSpec::new(
                                promises_core::RequestId(format!("t{t}-{i}")),
                                promises_core::ClientId(format!("t{t}")),
                            )
                            .predicate(Predicate::named("rooms", room.as_str())),
                        )
                        .unwrap();
                    if let Some(p) = resp.decision.granted_id() {
                        // Book it: take the room, release the promise.
                        let table = Catalog::instance_table(&PoolId::from("rooms"));
                        let r = room.clone();
                        pm.execute(&Environment::none().releasing(p), move |rm, txn| {
                            rm.update(txn, &table, &r, |rec| {
                                rec.set(Catalog::STATUS, status::TAKEN);
                            })
                            .map_err(ActionError::from)
                        })
                        .unwrap();
                        bookings.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Each of the 24 rooms was promised to exactly one client and taken.
    assert_eq!(bookings.load(Ordering::Relaxed), ROOMS as u64);
    assert_eq!(pm.live_count(), 0);
    let rm = pm.rm();
    let txn = rm.begin();
    let taken = rm
        .scan(&txn, &Catalog::instance_table(&PoolId::from("rooms")))
        .unwrap()
        .into_iter()
        .filter(|(_, r)| r.str(Catalog::STATUS) == Some(status::TAKEN))
        .count();
    rm.commit(txn).unwrap();
    assert_eq!(taken, ROOMS);
}

/// Property-view promises under concurrency: total booked never exceeds
/// the number of matching instances, and no protected booking ever fails.
#[test]
fn property_promises_never_oversell_under_contention() {
    let pm = new_pm();
    pm.register_pool(
        PoolSchema::instances("rooms", vec![PropertyDef::plain("view")])
            .with_strategy(CheckStrategy::TentativeAllocation),
    );
    const VIEW_ROOMS: usize = 10;
    for i in 0..VIEW_ROOMS * 2 {
        pm.seed_instance(
            "rooms",
            format!("r{i}").as_str(),
            Record::new().with("view", i < VIEW_ROOMS),
        )
        .unwrap();
    }

    let booked = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..6 {
            let pm = Arc::clone(&pm);
            let booked = Arc::clone(&booked);
            scope.spawn(move || {
                for i in 0..10 {
                    let resp = pm
                        .request(
                            PromiseRequestSpec::new(
                                promises_core::RequestId(format!("v{t}-{i}")),
                                promises_core::ClientId(format!("t{t}")),
                            )
                            .predicate(Predicate::property(
                                "rooms",
                                PropExpr::eq("view", true),
                                1,
                            )),
                        )
                        .unwrap();
                    if let Some(p) = resp.decision.granted_id() {
                        // Take whichever room the manager allocated to us.
                        let rec = pm.promise(p).expect("just granted");
                        let room = rec.allocated_in(&PoolId::from("rooms"))[0].0.clone();
                        let table = Catalog::instance_table(&PoolId::from("rooms"));
                        pm.execute(&Environment::none().releasing(p), move |rm, txn| {
                            rm.update(txn, &table, &room, |r| {
                                r.set(Catalog::STATUS, status::TAKEN);
                            })
                            .map_err(ActionError::from)
                        })
                        .expect("protected booking must never fail");
                        booked.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        booked.load(Ordering::Relaxed),
        VIEW_ROOMS as u64,
        "exactly the view rooms get booked, never more"
    );
    assert_eq!(pm.metrics().violations_rolled_back, 0);
}

/// Tightened regression for the observe-then-book race behind the old
/// `property_promises_never_oversell_under_contention` flake: once a
/// client has read its allocation via `PromiseManager::promise`, no
/// concurrent re-arrangement may move that allocation out from under it.
/// Here "shuffler" threads request floor-targeted promises that *need*
/// re-arrangement (both rooms of a floor, one of which a view promise may
/// tentatively hold) while "booker" threads observe and book their view
/// allocations — maximum pressure on exactly the raced path.
#[test]
fn observed_allocations_survive_rearrangement_pressure() {
    let pm = new_pm();
    pm.register_pool(
        PoolSchema::instances(
            "rooms",
            vec![PropertyDef::plain("view"), PropertyDef::plain("floor")],
        )
        .with_strategy(CheckStrategy::TentativeAllocation),
    );
    const FLOORS: usize = 8;
    for f in 0..FLOORS {
        pm.seed_instance(
            "rooms",
            format!("v{f}").as_str(),
            Record::new().with("view", true).with("floor", f as i64),
        )
        .unwrap();
        pm.seed_instance(
            "rooms",
            format!("p{f}").as_str(),
            Record::new().with("view", false).with("floor", f as i64),
        )
        .unwrap();
    }

    let booked = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        // Shufflers: "both rooms of floor f" can only be granted by
        // re-arranging a view promise tentatively holding v{f} onto
        // another view room — unless that allocation is pinned.
        for t in 0..4usize {
            let pm = Arc::clone(&pm);
            scope.spawn(move || {
                for i in 0..40usize {
                    let f = (t * 13 + i * 7) % FLOORS;
                    let resp = pm
                        .request(
                            PromiseRequestSpec::new(
                                promises_core::RequestId(format!("s{t}-{i}")),
                                promises_core::ClientId(format!("s{t}")),
                            )
                            .predicate(Predicate::property(
                                "rooms",
                                PropExpr::eq("floor", f as i64),
                                2,
                            )),
                        )
                        .unwrap();
                    if let Some(p) = resp.decision.granted_id() {
                        pm.release(p).unwrap();
                    }
                }
            });
        }
        // Bookers: observe the allocated room, then take exactly that room.
        // Retry until every view room is booked: a request may be rejected
        // while a shuffler transiently holds a view room, but shufflers
        // terminate, so rejected bookers eventually succeed.
        for t in 0..6usize {
            let pm = Arc::clone(&pm);
            let booked = Arc::clone(&booked);
            scope.spawn(move || {
                let mut i = 0usize;
                while booked.load(Ordering::Relaxed) < FLOORS as u64 && i < 10_000 {
                    i += 1;
                    let resp = pm
                        .request(
                            PromiseRequestSpec::new(
                                promises_core::RequestId(format!("b{t}-{i}")),
                                promises_core::ClientId(format!("b{t}")),
                            )
                            .predicate(Predicate::property(
                                "rooms",
                                PropExpr::eq("view", true),
                                1,
                            )),
                        )
                        .unwrap();
                    if let Some(p) = resp.decision.granted_id() {
                        let rec = pm.promise(p).expect("just granted");
                        let room = rec.allocated_in(&PoolId::from("rooms"))[0].0.clone();
                        let table = Catalog::instance_table(&PoolId::from("rooms"));
                        pm.execute(&Environment::none().releasing(p), move |rm, txn| {
                            rm.update(txn, &table, &room, |r| {
                                r.set(Catalog::STATUS, status::TAKEN);
                            })
                            .map_err(ActionError::from)
                        })
                        .expect("booking an observed allocation must never fail");
                        booked.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        booked.load(Ordering::Relaxed),
        FLOORS as u64,
        "every view room booked exactly once, never more"
    );
    assert_eq!(pm.metrics().violations_rolled_back, 0);
    // Exactly the view rooms were taken; re-arrangement pressure never
    // redirected a booking onto a non-view room.
    let rm = pm.rm();
    let txn = rm.begin();
    let rooms = rm
        .scan(&txn, &Catalog::instance_table(&PoolId::from("rooms")))
        .unwrap();
    rm.commit(txn).unwrap();
    let taken_view = rooms
        .iter()
        .filter(|(k, r)| k.starts_with('v') && r.str(Catalog::STATUS) == Some(status::TAKEN))
        .count();
    let taken_plain = rooms
        .iter()
        .filter(|(k, r)| k.starts_with('p') && r.str(Catalog::STATUS) == Some(status::TAKEN))
        .count();
    assert_eq!(taken_view, FLOORS, "all view rooms taken");
    assert_eq!(taken_plain, 0, "no non-view room ever taken");
}

/// Mixed grants, releases, violating rogue writes and expiries running
/// together: the manager must end consistent (no stuck PROMISED tags, no
/// negative stock, no live promises).
#[test]
fn mixed_chaos_ends_consistent() {
    let pm = new_pm();
    pm.register_pool(PoolSchema::quantity("stock"));
    pm.seed_quantity("stock", 1_000).unwrap();
    pm.register_pool(
        PoolSchema::instances("items", vec![PropertyDef::plain("grade")])
            .with_strategy(CheckStrategy::TentativeAllocation),
    );
    for i in 0..12 {
        pm.seed_instance(
            "items",
            format!("i{i}").as_str(),
            Record::new().with("grade", 1i64),
        )
        .unwrap();
    }

    std::thread::scope(|scope| {
        for t in 0..6 {
            let pm = Arc::clone(&pm);
            scope.spawn(move || {
                for i in 0..25 {
                    match (t + i) % 4 {
                        0 => {
                            // Quantity promise, consume under it.
                            let resp = pm
                                .request(
                                    PromiseRequestSpec::new(
                                        promises_core::RequestId(format!("q{t}-{i}")),
                                        promises_core::ClientId("chaos".into()),
                                    )
                                    .predicate(Predicate::qty_at_least("stock", 3)),
                                )
                                .unwrap();
                            if let Some(p) = resp.decision.granted_id() {
                                pm.execute(&Environment::none().releasing(p), |rm, txn| {
                                    rm.update(txn, Catalog::QTY_TABLE, "stock", |r| {
                                        let q = r.int("qty").unwrap();
                                        r.set("qty", q - 3);
                                    })
                                    .map_err(ActionError::from)
                                })
                                .unwrap();
                            }
                        }
                        1 => {
                            // Item promise then release.
                            let resp = pm
                                .request(
                                    PromiseRequestSpec::new(
                                        promises_core::RequestId(format!("p{t}-{i}")),
                                        promises_core::ClientId("chaos".into()),
                                    )
                                    .predicate(Predicate::property("items", PropExpr::True, 2)),
                                )
                                .unwrap();
                            if let Some(p) = resp.decision.granted_id() {
                                pm.release(p).unwrap();
                            }
                        }
                        2 => {
                            // Rogue unprotected write: may be rolled back.
                            let _ = pm.execute(&Environment::none(), |rm, txn| {
                                rm.update(txn, Catalog::QTY_TABLE, "stock", |r| {
                                    let q = r.int("qty").unwrap();
                                    r.set("qty", q - 10);
                                })
                                .map_err(ActionError::from)
                            });
                        }
                        _ => {
                            // Benign write (restock) never violates.
                            pm.execute(&Environment::none(), |rm, txn| {
                                rm.update(txn, Catalog::QTY_TABLE, "stock", |r| {
                                    let q = r.int("qty").unwrap();
                                    r.set("qty", q + 1);
                                })
                                .map_err(ActionError::from)
                            })
                            .unwrap();
                        }
                    }
                }
            });
        }
    });

    assert_eq!(pm.live_count(), 0, "all promises settled");
    let rm = pm.rm();
    let txn = rm.begin();
    let stock = rm
        .get(&txn, Catalog::QTY_TABLE, "stock")
        .unwrap()
        .unwrap()
        .int("qty")
        .unwrap();
    assert!(stock >= 0, "stock never negative (got {stock})");
    // No orphaned PROMISED tags after all promises were settled.
    let stuck = rm
        .scan(&txn, &Catalog::instance_table(&PoolId::from("items")))
        .unwrap()
        .into_iter()
        .filter(|(_, r)| r.str(Catalog::STATUS) == Some(status::PROMISED))
        .count();
    rm.commit(txn).unwrap();
    assert_eq!(stuck, 0, "no orphaned tentative allocations");
    assert_eq!(rm.locked_granules(), 0, "no leaked locks");
}
