//! Crash-recovery integration tests for the durable promise journal:
//! a journalled manager is "crashed" (dropped), a fresh incarnation
//! replays the journal, and the rebuilt promise table must be
//! byte-equivalent to the pre-crash state — including per-pool quantity
//! aggregates, the expiry histogram, and the request-dedup index.

use std::sync::Arc;

use proptest::prelude::*;

use promises_core::{
    ManualClock, PoolSchema, Predicate, PromiseId, PromiseJournal, PromiseManager,
    PromiseRequestSpec,
};
use promises_rm::ResourceManager;

const LONG_MS: u64 = 10_000_000;

/// A journalled manager over two quantity pools.
fn journalled_pm(clock: &Arc<ManualClock>, journal: &Arc<PromiseJournal>) -> Arc<PromiseManager> {
    let rm = Arc::new(ResourceManager::new());
    let pm =
        Arc::new(PromiseManager::new(rm, Arc::clone(clock) as _).with_journal(Arc::clone(journal)));
    for pool in ["widgets", "gears"] {
        pm.register_pool(PoolSchema::quantity(pool));
        pm.seed_quantity(pool, 10_000).unwrap();
    }
    pm
}

fn spec(client: &str, request: &str, pool: &str, qty: u64, duration_ms: u64) -> PromiseRequestSpec {
    PromiseRequestSpec::new(request, client)
        .predicate(Predicate::qty_at_least(pool, qty))
        .duration_ms(duration_ms)
}

fn grant(pm: &PromiseManager, s: PromiseRequestSpec) -> PromiseId {
    pm.request(s).unwrap().decision.granted_id().expect("grant")
}

#[test]
fn crash_restart_rebuilds_byte_equivalent_state() {
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(PromiseJournal::new());
    let pm = journalled_pm(&clock, &journal);

    // Grants across both pools, from several clients, with varied TTLs so
    // the expiry histogram has more than one bucket.
    let mut ids = Vec::new();
    for i in 0..10u64 {
        let pool = if i % 2 == 0 { "widgets" } else { "gears" };
        let s = spec(
            &format!("client-{}", i % 3),
            &format!("order-{i}"),
            pool,
            (i % 4) + 1,
            LONG_MS + i * 1_000,
        );
        ids.push(grant(&pm, s));
    }
    // Release a few so the journal has R records interleaved with G.
    for id in [ids[1], ids[4], ids[7]] {
        pm.release(id).unwrap();
    }

    let pre_digest = pm.state_digest();
    let pre_qty = pm.promised_quantities();
    let pre_live = pm.live_count();
    drop(pm); // crash

    let pm2 = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    let report = pm2.recover(Arc::clone(&journal)).unwrap();
    assert_eq!(report.replayed, 13, "10 grants + 3 releases");
    assert_eq!(report.recovered, pre_live);
    assert_eq!(report.pruned, 0);
    assert_eq!(report.generation, 1);

    assert_eq!(
        pm2.state_digest(),
        pre_digest,
        "recovered table must be byte-equivalent"
    );
    assert_eq!(pm2.promised_quantities(), pre_qty);
    assert_eq!(pm2.live_count(), pre_live);

    // The request-dedup index was rebuilt: re-sending a pre-crash request
    // returns the original promise instead of double-granting.
    let again = grant(&pm2, spec("client-0", "order-0", "widgets", 1, LONG_MS));
    assert_eq!(again, ids[0]);
    assert_eq!(
        pm2.live_count(),
        pre_live,
        "dedup hit must not create a promise"
    );

    // Fresh requests still get ids above every replayed one.
    let fresh = grant(&pm2, spec("client-9", "order-new", "gears", 1, LONG_MS));
    assert!(fresh.0 > ids.iter().map(|i| i.0).max().unwrap());
}

#[test]
fn promises_expiring_while_down_are_pruned_and_never_readmitted() {
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(PromiseJournal::new());
    let pm = journalled_pm(&clock, &journal);

    let doomed: Vec<PromiseId> = (0..4)
        .map(|i| grant(&pm, spec("c", &format!("short-{i}"), "widgets", 2, 50)))
        .collect();
    let survivors: Vec<PromiseId> = (0..3)
        .map(|i| grant(&pm, spec("c", &format!("long-{i}"), "gears", 3, LONG_MS)))
        .collect();
    drop(pm); // crash while all 7 are live

    clock.advance(1_000); // the short promises expire during the outage

    let pm2 = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    let report = pm2.recover(Arc::clone(&journal)).unwrap();
    assert_eq!(report.recovered, 7, "replay first rebuilds everything");
    assert_eq!(report.pruned, 4, "then expiry-aware pruning drops the dead");
    assert_eq!(pm2.live_count(), survivors.len());
    for id in &doomed {
        assert!(
            pm2.promise(*id).is_none(),
            "expired promise {id:?} re-admitted"
        );
    }
    for id in &survivors {
        assert!(pm2.promise(*id).is_some());
    }
    // Only the surviving pool still has promised quantity.
    assert_eq!(pm2.promised_quantities(), vec![("gears".into(), 9)]);

    // The recovery appended generation-stamped Expire records, so a *second*
    // incarnation recovering from the same journal sees them as ordinary
    // history: nothing left to prune, identical state, and the expired
    // promises stay gone even though their Grant records are replayed.
    let pm3 = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    let report3 = pm3.recover(Arc::clone(&journal)).unwrap();
    assert_eq!(report3.pruned, 0);
    assert_eq!(report3.generation, 2);
    assert_eq!(pm3.state_digest(), pm2.state_digest());
    for id in &doomed {
        assert!(pm3.promise(*id).is_none());
    }

    // And a dedup probe for an expired request must not resurrect it with
    // the old id: the tombstone forces a fresh grant.
    let revived = grant(&pm3, spec("c", "short-0", "widgets", 2, LONG_MS));
    assert!(
        !doomed.contains(&revived),
        "expired promise id must not be re-issued"
    );
}

#[test]
fn compaction_preserves_recovery_byte_for_byte() {
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(PromiseJournal::new());
    let pm = journalled_pm(&clock, &journal);

    let mut ids = Vec::new();
    for i in 0..12u64 {
        let pool = if i % 2 == 0 { "widgets" } else { "gears" };
        let s = spec(
            &format!("client-{}", i % 3),
            &format!("order-{i}"),
            pool,
            (i % 4) + 1,
            LONG_MS + i * 1_000,
        );
        ids.push(grant(&pm, s));
    }
    for id in [ids[0], ids[3], ids[6], ids[9]] {
        pm.release(id).unwrap();
    }
    let history_len = journal.len();
    let pre_digest = pm.state_digest();

    // Ground truth: recovery over the uncompacted history.
    let reference = Arc::new(PromiseJournal::from_lines(&journal.lines()).unwrap());
    let pm_ref = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    pm_ref.recover(reference).unwrap();
    assert_eq!(pm_ref.state_digest(), pre_digest);

    // Compaction folds 16 records into one checkpoint…
    let report = pm.compact().unwrap().expect("journal attached");
    assert_eq!(report.dropped, history_len);
    assert_eq!(report.live, 8);
    assert_eq!(journal.len(), 1);
    assert_eq!(
        pm.state_digest(),
        pre_digest,
        "compaction must not disturb the live manager"
    );
    drop(pm); // crash

    // …and recovery over the checkpoint is byte-identical.
    let pm2 = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    let rec = pm2.recover(Arc::clone(&journal)).unwrap();
    assert_eq!(rec.replayed, 1, "one checkpoint record is the whole replay");
    assert_eq!(pm2.state_digest(), pre_digest);

    // The dedup index survives the checkpoint (live records carry their
    // request keys)…
    let again = grant(
        &pm2,
        spec("client-1", "order-1", "gears", 2, LONG_MS + 1_000),
    );
    assert_eq!(again, ids[1]);
    // …and the id high-water does too: released ids 0/3/6/9 are gone from
    // the checkpoint, but fresh grants must never reuse them.
    let fresh = grant(&pm2, spec("client-9", "order-new", "widgets", 1, LONG_MS));
    assert!(fresh.0 > ids.iter().map(|i| i.0).max().unwrap());
}

#[test]
fn torn_trailing_record_recovers_from_the_prefix() {
    let clock = Arc::new(ManualClock::new());
    let journal = Arc::new(PromiseJournal::new());
    let pm = journalled_pm(&clock, &journal);
    for i in 0..6u64 {
        grant(&pm, spec("c", &format!("r{i}"), "widgets", i + 1, LONG_MS));
    }
    pm.release(PromiseId(2)).unwrap();
    drop(pm); // crash mid-append: the final record is half-written

    let mut lines = journal.lines();
    let last = lines.last_mut().unwrap();
    last.truncate(last.len() / 2);

    let (torn_journal, torn) = PromiseJournal::from_lines_tolerant(&lines).unwrap();
    assert!(torn.is_some(), "the chopped tail must be reported");
    assert_eq!(torn_journal.len(), lines.len() - 1);

    // Ground truth: the journal as if the torn append had never happened.
    let prefix = Arc::new(PromiseJournal::from_lines(&lines[..lines.len() - 1]).unwrap());
    let pm_ref = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    pm_ref.recover(prefix).unwrap();

    let pm2 = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
    pm2.recover(Arc::new(torn_journal)).unwrap();
    assert_eq!(
        pm2.state_digest(),
        pm_ref.state_digest(),
        "torn-tail recovery equals recovery from the intact prefix"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compacting at *any* point in the history is invisible to recovery:
    /// a manager that checkpoints after op `k` and one that never compacts
    /// reach byte-identical post-recovery state, for arbitrary
    /// interleavings of grants, releases, and downtime expiry.
    #[test]
    fn compaction_at_a_random_point_is_invisible_to_recovery(
        ops in proptest::collection::vec(
            (0u8..2, 1u64..5, any::<bool>(), any::<bool>()),
            1..24,
        ),
        compact_at_raw in 0usize..24,
        downtime_ms in 0u64..2_000,
    ) {
        let compact_at = compact_at_raw % ops.len();
        let clock = Arc::new(ManualClock::new());
        let journal_plain = Arc::new(PromiseJournal::new());
        let journal_compacted = Arc::new(PromiseJournal::new());
        let pm_plain = journalled_pm(&clock, &journal_plain);
        let pm_compacted = journalled_pm(&clock, &journal_compacted);

        for (i, (pool, qty, short, release)) in ops.iter().enumerate() {
            let pool = if *pool == 0 { "widgets" } else { "gears" };
            let duration = if *short { 50 } else { LONG_MS };
            for pm in [&pm_plain, &pm_compacted] {
                let s = spec(&format!("c{}", i % 3), &format!("r{i}"), pool, *qty, duration);
                let id = grant(pm, s);
                if *release {
                    pm.release(id).unwrap();
                }
            }
            if i == compact_at {
                pm_compacted.compact().unwrap();
            }
        }
        drop(pm_plain);
        drop(pm_compacted);
        clock.advance(downtime_ms);

        let pm_a = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
        pm_a.recover(Arc::clone(&journal_plain)).unwrap();
        let pm_b = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
        pm_b.recover(Arc::clone(&journal_compacted)).unwrap();

        prop_assert!(journal_compacted.len() <= journal_plain.len());
        prop_assert_eq!(pm_b.state_digest(), pm_a.state_digest());
        prop_assert_eq!(pm_b.live_count(), pm_a.live_count());
        prop_assert_eq!(pm_b.promised_quantities(), pm_a.promised_quantities());
    }

    /// Replaying a journal twice is a no-op: two fresh managers recovering
    /// from the same journal (the second seeing the first's recovery
    /// records) reach byte-identical state, for arbitrary interleavings of
    /// grants, releases, and downtime expiry.
    #[test]
    fn replaying_a_journal_twice_is_a_noop(
        ops in proptest::collection::vec(
            (0u8..2, 1u64..5, any::<bool>(), any::<bool>()),
            1..24,
        ),
        downtime_ms in 0u64..2_000,
    ) {
        let clock = Arc::new(ManualClock::new());
        let journal = Arc::new(PromiseJournal::new());
        let pm = journalled_pm(&clock, &journal);

        let mut live = Vec::new();
        for (i, (pool, qty, short, release)) in ops.iter().enumerate() {
            let pool = if *pool == 0 { "widgets" } else { "gears" };
            let duration = if *short { 50 } else { LONG_MS };
            let s = spec(&format!("c{}", i % 3), &format!("r{i}"), pool, *qty, duration);
            let id = grant(&pm, s);
            if *release {
                pm.release(id).unwrap();
            } else {
                live.push(id);
            }
        }
        drop(pm);
        clock.advance(downtime_ms);

        let pm_a = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
        let report_a = pm_a.recover(Arc::clone(&journal)).unwrap();
        let digest_a = pm_a.state_digest();

        // Second replay of the (now extended) journal: same state, nothing
        // new to prune.
        let pm_b = journalled_pm(&clock, &Arc::new(PromiseJournal::new()));
        let report_b = pm_b.recover(Arc::clone(&journal)).unwrap();
        prop_assert_eq!(pm_b.state_digest(), digest_a);
        prop_assert_eq!(report_b.pruned, 0);
        prop_assert_eq!(report_b.recovered, report_a.recovered - report_a.pruned);
        prop_assert_eq!(pm_b.live_count(), pm_a.live_count());
        prop_assert_eq!(pm_b.promised_quantities(), pm_a.promised_quantities());
    }
}
