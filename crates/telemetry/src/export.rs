//! Snapshot exporters: JSON and Prometheus text exposition.
//!
//! Both exporters render a [`TelemetrySnapshot`] — they never touch live
//! atomics, so exporting is race-free by construction. JSON is the shape
//! dumped into `BENCH_obs.json`; the Prometheus form follows the text
//! exposition format (one `# TYPE` per family, histogram quantiles as
//! gauge series labelled by stage).

use crate::hist::HistogramSnapshot;
use crate::registry::TelemetrySnapshot;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_hist(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        h.count,
        h.sum,
        h.mean_ns().unwrap_or(0),
        h.p50().unwrap_or(0),
        h.p95().unwrap_or(0),
        h.p99().unwrap_or(0),
        h.max,
    )
}

/// Renders a snapshot as a JSON object:
/// `{"histograms": {name: {count, sum_ns, mean_ns, p50_ns, p95_ns,
/// p99_ns, max_ns}}, "counters": {name: value}, "gauges": {name: value},
/// "spans": {recorded, dropped}}`.
pub fn to_json(snap: &TelemetrySnapshot) -> String {
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .map(|(k, h)| format!("\"{}\":{}", json_escape(k), json_hist(h)))
        .collect();
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
        .collect();
    format!(
        "{{\"histograms\":{{{}}},\"counters\":{{{}}},\"gauges\":{{{}}},\"spans\":{{\"recorded\":{},\"dropped\":{}}}}}",
        hists.join(","),
        counters.join(","),
        gauges.join(","),
        snap.spans_recorded,
        snap.spans_dropped,
    )
}

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a snapshot in the Prometheus text exposition format. Histogram
/// quantiles become `promises_latency_ns{stage="...",quantile="..."}`
/// series plus `_count`/`_sum`/`_max` companions; counters become
/// `promises_events_total{name="..."}`.
pub fn to_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP promises_latency_ns Stage latency quantile estimates (nanoseconds).\n");
    out.push_str("# TYPE promises_latency_ns gauge\n");
    for (name, h) in &snap.histograms {
        let stage = prom_escape(name);
        for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
            if let Some(v) = v {
                out.push_str(&format!(
                    "promises_latency_ns{{stage=\"{stage}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
        }
        out.push_str(&format!(
            "promises_latency_ns_count{{stage=\"{stage}\"}} {}\n",
            h.count
        ));
        out.push_str(&format!(
            "promises_latency_ns_sum{{stage=\"{stage}\"}} {}\n",
            h.sum
        ));
        out.push_str(&format!(
            "promises_latency_ns_max{{stage=\"{stage}\"}} {}\n",
            h.max
        ));
    }
    out.push_str("# HELP promises_events_total Typed event counters.\n");
    out.push_str("# TYPE promises_events_total counter\n");
    for (name, v) in &snap.counters {
        out.push_str(&format!(
            "promises_events_total{{name=\"{}\"}} {v}\n",
            prom_escape(name)
        ));
    }
    if !snap.gauges.is_empty() {
        out.push_str("# HELP promises_level Last-value-wins level gauges.\n");
        out.push_str("# TYPE promises_level gauge\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!(
                "promises_level{{name=\"{}\"}} {v}\n",
                prom_escape(name)
            ));
        }
    }
    out.push_str(&format!(
        "# HELP promises_spans_recorded_total Spans pushed into the ring.\n# TYPE promises_spans_recorded_total counter\npromises_spans_recorded_total {}\n",
        snap.spans_recorded
    ));
    out.push_str(&format!(
        "# HELP promises_spans_dropped_total Spans overwritten by newer ones.\n# TYPE promises_spans_dropped_total counter\npromises_spans_dropped_total {}\n",
        snap.spans_dropped
    ));
    out
}

/// Validates that `s` is one well-formed JSON value (with nothing but
/// whitespace after it). A minimal recursive-descent syntax checker — no
/// value model, no allocation — used by the doctor gate to prove every
/// incident report is machine-parseable without pulling in a JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(|h| h.is_ascii_hexdigit()) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            0x00..=0x1F => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    fn sample() -> TelemetrySnapshot {
        let tel = Telemetry::new();
        tel.record_ns("bus.deliver", 1_000);
        tel.record_ns("bus.deliver", 4_000);
        tel.incr("pm.reject.overloaded");
        tel.set_gauge("pm.journal.records", 12);
        tel.snapshot()
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = to_json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"bus.deliver\""));
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"pm.reject.overloaded\":1"));
        assert!(j.contains("\"gauges\":{\"pm.journal.records\":12}"));
        assert!(j.contains("\"p99_ns\":"));
        // Balanced braces (no stray quoting bugs).
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn validator_accepts_exporter_output_and_edge_values() {
        validate_json(&to_json(&sample())).expect("exporter output is valid");
        for ok in [
            "null",
            " [1, -2.5, 1e9, 1E-3, \"a\\u00e9\", {\"k\":[]}] ",
            "{\"a\":{\"b\":\"c\\n\"}}",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} x",
            "\"unterminated",
            "01abc",
            "{'a':1}",
            "nulL",
        ] {
            assert!(validate_json(bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn prometheus_has_type_headers_and_series() {
        let p = to_prometheus(&sample());
        assert!(p.contains("# TYPE promises_latency_ns gauge"));
        assert!(p.contains("promises_latency_ns{stage=\"bus.deliver\",quantile=\"0.99\"}"));
        assert!(p.contains("promises_latency_ns_count{stage=\"bus.deliver\"} 2"));
        assert!(p.contains("promises_events_total{name=\"pm.reject.overloaded\"} 1"));
        assert!(p.contains("promises_level{name=\"pm.journal.records\"} 12"));
        assert!(p.ends_with('\n'));
    }
}
