//! Causal trace/span identifiers, span records, and the ambient trace
//! context.
//!
//! A **trace** covers one logical client operation end to end: the trace id
//! is minted once at the client and carried through every hop — bus
//! attempts (retries reuse the trace but mint a fresh span), the promise
//! manager's grant/check/execute/release paths, and the resource manager's
//! transactions. A **span** is one timed step inside a trace; spans name
//! their parent so the causal chain can be reassembled offline.
//!
//! Components that sit below the wire (the PM, the RM) receive the trace
//! context *ambiently*: the service endpoint pushes the envelope's context
//! onto a thread-local before dispatching, and every span recorded on that
//! thread while the guard lives joins the trace. This keeps trace plumbing
//! out of every PM/RM method signature.

use std::cell::Cell;

/// Identifies one end-to-end causal trace (one logical client operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The propagated pair: which trace we are in and which span is the
/// current causal parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every downstream span joins.
    pub trace: TraceId,
    /// The span downstream spans name as their parent.
    pub parent: SpanId,
}

/// Named span kinds — the fixed taxonomy of DESIGN.md §12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// One logical client send, covering every retry attempt.
    ClientSend,
    /// One bus attempt within a logical send (retries mint a new one).
    ClientAttempt,
    /// One bus round trip: encode → deliver → handle → encode → reply.
    BusDeliver,
    /// A promise-request decision (grant / reject / dedup) in the PM.
    PmGrant,
    /// One promise participating in a post-action check.
    PmCheck,
    /// An action executed under promises (env resolution + action + check).
    PmExecute,
    /// A promise released (explicitly, by exchange, or action-atomically).
    PmRelease,
    /// A promise reaped after expiry.
    PmExpire,
    /// A journal compaction: live state checkpointed, history dropped.
    PmCompact,
    /// One RM transaction from begin to commit.
    RmTxn,
    /// One RM transaction abort, replaying the undo log.
    RmUndo,
    /// A cluster coordinator's prepare fan-out for one cross-shard
    /// transaction (covers every per-shard hold request).
    CoordPrepare,
    /// A coordinator committing a prepared cross-shard transaction.
    CoordCommit,
    /// A coordinator aborting a cross-shard transaction (a shard rejected,
    /// a prepare was lost, or recovery presumed abort).
    CoordAbort,
    /// A shard leader dying and its warm follower being promoted in its
    /// place (covers the catch-up sync, endpoint swap, and epoch bump).
    Failover,
}

impl SpanKind {
    /// Every kind, in taxonomy order (exporters iterate this).
    pub const ALL: [SpanKind; 15] = [
        SpanKind::ClientSend,
        SpanKind::ClientAttempt,
        SpanKind::BusDeliver,
        SpanKind::PmGrant,
        SpanKind::PmCheck,
        SpanKind::PmExecute,
        SpanKind::PmRelease,
        SpanKind::PmExpire,
        SpanKind::PmCompact,
        SpanKind::RmTxn,
        SpanKind::RmUndo,
        SpanKind::CoordPrepare,
        SpanKind::CoordCommit,
        SpanKind::CoordAbort,
        SpanKind::Failover,
    ];

    /// The wire/exporter name of this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::ClientSend => "client.send",
            SpanKind::ClientAttempt => "client.attempt",
            SpanKind::BusDeliver => "bus.deliver",
            SpanKind::PmGrant => "pm.grant",
            SpanKind::PmCheck => "pm.check",
            SpanKind::PmExecute => "pm.execute",
            SpanKind::PmRelease => "pm.release",
            SpanKind::PmExpire => "pm.expire",
            SpanKind::PmCompact => "pm.compact",
            SpanKind::RmTxn => "rm.txn",
            SpanKind::RmUndo => "rm.undo",
            SpanKind::CoordPrepare => "coord.prepare",
            SpanKind::CoordCommit => "coord.commit",
            SpanKind::CoordAbort => "coord.abort",
            SpanKind::Failover => "cluster.failover",
        }
    }
}

/// How the spanned step ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanOutcome {
    /// The step succeeded.
    #[default]
    Ok,
    /// The step was refused by policy (promise rejection, overload).
    Rejected,
    /// A retried request was answered with the original grant.
    Deduped,
    /// A post-action check failed and the action was undone.
    RolledBack,
    /// The step failed with an error.
    Error,
}

impl SpanOutcome {
    /// The exporter name of this outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Rejected => "rejected",
            SpanOutcome::Deduped => "deduped",
            SpanOutcome::RolledBack => "rolled-back",
            SpanOutcome::Error => "error",
        }
    }
}

/// Which injected fault (if any) this span observed, so goodput loss in a
/// fault sweep can be attributed to drop vs. delay vs. storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultTag {
    /// The request was dropped before the service ran.
    DropRequest,
    /// The reply was dropped after the service ran.
    DropReply,
    /// The request was delivered twice.
    Duplicate,
    /// The message was delayed in flight.
    Delay,
    /// A storage access failed with an injected RM error.
    Storage,
    /// An undo write failed during rollback replay.
    Undo,
}

impl FaultTag {
    /// The exporter name of this fault tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultTag::DropRequest => "drop-request",
            FaultTag::DropReply => "drop-reply",
            FaultTag::Duplicate => "duplicate",
            FaultTag::Delay => "delay",
            FaultTag::Storage => "storage",
            FaultTag::Undo => "undo",
        }
    }
}

/// One completed span, as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The causal parent, if the span was not a trace root.
    pub parent: Option<SpanId>,
    /// What kind of step this was.
    pub kind: SpanKind,
    /// Start time in nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// The promise this span is about, when it is a lifecycle event.
    pub promise: Option<u64>,
    /// How the step ended.
    pub outcome: SpanOutcome,
    /// Injected-fault annotation, when a fault was observed.
    pub fault: Option<FaultTag>,
    /// Free-form detail (pool name, rejection cause, retry attempt).
    pub note: Option<String>,
}

impl SpanRecord {
    /// End time in nanoseconds since the registry epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

thread_local! {
    static CURRENT_TRACE: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The ambient trace context on this thread, if one is installed.
pub fn current_trace() -> Option<TraceContext> {
    CURRENT_TRACE.with(|c| c.get())
}

/// Installs `ctx` as the ambient trace context for the lifetime of the
/// returned guard; the previous context (if any) is restored on drop.
/// Guards nest, so a service can re-scope the context per message.
#[must_use = "the context is popped when the guard drops"]
pub fn push_trace(ctx: TraceContext) -> TraceGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(Some(ctx)));
    TraceGuard { prev }
}

/// Restores the previous ambient trace context on drop. See [`push_trace`].
#[derive(Debug)]
pub struct TraceGuard {
    prev: Option<TraceContext>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev.take()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_context_nests_and_restores() {
        assert_eq!(current_trace(), None);
        let outer = TraceContext {
            trace: TraceId(1),
            parent: SpanId(10),
        };
        let inner = TraceContext {
            trace: TraceId(2),
            parent: SpanId(20),
        };
        {
            let _g1 = push_trace(outer);
            assert_eq!(current_trace(), Some(outer));
            {
                let _g2 = push_trace(inner);
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn span_kind_names_are_unique() {
        let mut names: Vec<_> = SpanKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanKind::ALL.len());
    }
}
