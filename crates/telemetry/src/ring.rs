//! A bounded, overwrite-oldest ring buffer of span records.
//!
//! Writers claim a slot with a single `fetch_add` on the global sequence
//! counter — claiming is wait-free and never blocks on other writers. The
//! claimed slot is then published under a per-slot guard, which only
//! contends when two writers land on the *same* slot, i.e. when one laps
//! the other by a full ring — vanishingly rare at sane capacities. A slot
//! keeps the record with the highest sequence number, so a lapped writer's
//! stale record never clobbers a newer one and a snapshot is always "the
//! most recent ≤ capacity spans".

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::span::SpanRecord;

struct Slot {
    rec: Mutex<Option<(u64, SpanRecord)>>,
}

/// Bounded span sink with overwrite-oldest semantics.
pub struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    rec: Mutex::new(None),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans pushed over the ring's lifetime (including overwritten
    /// ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans pushed but no longer retained (overwritten by newer ones).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Pushes a span, overwriting the oldest retained span when full.
    pub fn push(&self, rec: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.rec.lock();
        // A slow writer lapped by a full ring must not clobber the newer
        // record already published in its slot.
        if guard.as_ref().is_none_or(|(s, _)| *s < seq) {
            *guard = Some((seq, rec));
        }
    }

    /// The retained spans in push order (oldest first). Concurrent pushes
    /// continue; the snapshot is a consistent per-slot copy.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<(u64, SpanRecord)> = self
            .slots
            .iter()
            .filter_map(|s| s.rec.lock().clone())
            .collect();
        out.sort_unstable_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Empties the ring (sequence numbering keeps monotonically rising).
    pub fn clear(&self) {
        for s in self.slots.iter() {
            *s.rec.lock() = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, SpanKind, SpanOutcome, TraceId};

    fn rec(n: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(n),
            span: SpanId(n),
            parent: None,
            kind: SpanKind::PmGrant,
            start_ns: n,
            dur_ns: 1,
            promise: None,
            outcome: SpanOutcome::Ok,
            fault: None,
            note: None,
        }
    }

    #[test]
    fn retains_most_recent_capacity_spans() {
        let ring = SpanRing::new(64);
        for n in 0..200 {
            ring.push(rec(n));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        let traces: Vec<u64> = snap.iter().map(|r| r.trace.0).collect();
        assert_eq!(traces, (136..200).collect::<Vec<_>>());
        assert_eq!(ring.recorded(), 200);
        assert_eq!(ring.dropped(), 136);
    }

    #[test]
    fn clear_keeps_counting() {
        let ring = SpanRing::new(4);
        for n in 0..6 {
            ring.push(rec(n));
        }
        ring.clear();
        assert!(ring.snapshot().is_empty());
        ring.push(rec(99));
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(ring.recorded(), 7);
    }
}
