//! Fixed-bucket log-scale latency histograms.
//!
//! Buckets are powers of two of nanoseconds: bucket `i` holds values in
//! `[2^i, 2^(i+1))` (bucket 0 also absorbs 0, the last bucket absorbs
//! everything above). With [`BUCKETS`] = 48 the range spans 1ns to ~39h at
//! a fixed worst-case relative error of 2×, which is ample for latency
//! work where we report order-of-magnitude tails (p50/p95/p99/max).
//! Recording is a handful of relaxed atomic adds, so histograms can sit on
//! hot paths and be snapshotted concurrently without stopping traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets. Covers `[1ns, 2^48ns ≈ 78h)`.
pub const BUCKETS: usize = 48;

/// The bucket a value lands in: `floor(log2(max(v, 1)))`, clamped to the
/// last bucket.
pub fn bucket_index(v: u64) -> usize {
    ((63 - v.max(1).leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Half-open bounds `[lo, hi)` of bucket `i`; the last bucket's upper
/// bound is `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i.min(BUCKETS - 1);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    };
    (lo, hi)
}

/// A concurrent fixed-bucket log-scale histogram of nanosecond values.
///
/// The total count is derived from the buckets at snapshot time rather
/// than kept in its own atomic, and the max is only written when it
/// actually grows, so the hot recording path is two relaxed adds plus a
/// load — cheap enough to sit inside per-operation code.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond value.
    pub fn record(&self, v_ns: u64) {
        self.buckets[bucket_index(v_ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v_ns, Ordering::Relaxed);
        // After warm-up the max almost never moves; guard the RMW with a
        // plain load so steady-state recording stays two atomic adds.
        if v_ns > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v_ns, Ordering::Relaxed);
        }
    }

    /// Records a duration (saturating at `u64::MAX` ns).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy; concurrent recording keeps going. The copy is
    /// taken bucket-by-bucket with relaxed loads, so totals may be off by
    /// in-flight records — fine for reporting, not for accounting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; see [`bucket_bounds`].
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (ns).
    pub sum: u64,
    /// Largest recorded value (ns).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean in nanoseconds, `None` when empty (never a fabricated zero —
    /// see the `avg_latency` bug this replaced).
    pub fn mean_ns(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }

    /// Estimated `q`-quantile in nanoseconds (`0 <= q <= 1`): the upper
    /// bound of the bucket where the cumulative count crosses `q · count`,
    /// clamped to the observed maximum so the estimate never exceeds a
    /// real value. Returns `None` when empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= target {
                let (_, hi) = bucket_bounds(i);
                return Some(hi.saturating_sub(1).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (ns); `None` when empty.
    pub fn p50(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate (ns); `None` when empty.
    pub fn p95(&self) -> Option<u64> {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate (ns); `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Consecutive buckets tile with no gap or overlap.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi, lo_next, "bucket {i} upper != bucket {} lower", i + 1);
        }
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 100_000);
        let p50 = s.p50().unwrap();
        let p99 = s.p99().unwrap();
        assert!(p50 <= p99, "quantiles must be monotone: {p50} > {p99}");
        assert!(p99 <= s.max);
        // p50 of {10,100,1k,10k,100k}: third value is 1_000, so the
        // estimate must sit in 1_000's bucket (upper bound 2^10 - 1).
        let (lo, hi) = bucket_bounds(bucket_index(1_000));
        assert!(p50 >= lo && p50 < hi, "p50={p50} outside [{lo},{hi})");
    }

    #[test]
    fn empty_snapshot_reports_none_not_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean_ns(), None);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 505);
        assert_eq!(s.max, 500);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(t * per + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        assert_eq!(s.buckets.iter().sum::<u64>(), threads * per);
        assert_eq!(s.max, threads * per - 1);
    }
}
