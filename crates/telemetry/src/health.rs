//! Cluster health plane: derived health gauges and anomaly watchdogs
//! (DESIGN.md §17).
//!
//! The aggregation layer periodically folds per-shard registries (merged
//! with [`TelemetrySnapshot::absorb_prefixed`]) into one
//! [`HealthObservation`] — replication tip/watermark/lag per shard,
//! oldest in-doubt age, lease sum vs pool total, journal growth vs
//! compaction cadence, dedup-map sizes — by *naming convention* over the
//! snapshot's gauges and counters, so it needs no back-references into
//! the cluster.
//!
//! [`HealthState`] holds the stateful watchdogs over consecutive
//! observations:
//!
//! * **stalled replication** — a shard's journal tip is ahead of its
//!   follower's acked watermark and the watermark has not moved for
//!   [`WatchdogConfig::stall_ticks`] consecutive observations;
//! * **in-doubt age** — some prepared hold has been awaiting its
//!   coordinator longer than [`WatchdogConfig::in_doubt_age_limit_ms`];
//! * **lease sum invariant** — Σ per-shard leases ≠ the pool's registered
//!   total (capacity stranded by a mid-rebalance crash, or oversold);
//! * **SLO burn rate** — a two-window [`BurnRateMonitor`] over a latency
//!   histogram, replacing a static p99 threshold: the fast window catches
//!   a latency fire quickly, the slow window keeps one noisy batch from
//!   tripping it.

use std::collections::{BTreeMap, VecDeque};

use crate::hist::{bucket_index, HistogramSnapshot, BUCKETS};
use crate::registry::{Telemetry, TelemetrySnapshot};

/// The fixed watchdog taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Watchdog {
    /// Journal tip ahead of the follower watermark, watermark frozen.
    StalledReplication,
    /// A prepared hold in doubt longer than the configured limit.
    InDoubtAge,
    /// Σ per-shard leases ≠ registered pool total.
    LeaseSumInvariant,
    /// Two-window SLO burn over the monitored latency histogram.
    SloBurnRate,
}

impl Watchdog {
    /// Stable name used in incident reports and BENCH_doctor.json.
    pub fn name(&self) -> &'static str {
        match self {
            Watchdog::StalledReplication => "stalled-replication",
            Watchdog::InDoubtAge => "in-doubt-age",
            Watchdog::LeaseSumInvariant => "lease-sum-invariant",
            Watchdog::SloBurnRate => "slo-burn-rate",
        }
    }

    /// Every watchdog, for exhaustive silence tests.
    pub const ALL: [Watchdog; 4] = [
        Watchdog::StalledReplication,
        Watchdog::InDoubtAge,
        Watchdog::LeaseSumInvariant,
        Watchdog::SloBurnRate,
    ];
}

/// One watchdog firing: which dog, what it was watching, and why.
#[derive(Debug, Clone)]
pub struct WatchdogTrip {
    /// Which watchdog fired.
    pub watchdog: Watchdog,
    /// What it was watching (shard endpoint, pool, histogram stage).
    pub subject: String,
    /// Human-readable evidence (the gauge values that crossed the line).
    pub detail: String,
}

/// Replication health for one shard, by naming convention from
/// `cluster.repl.tip.shardN` / `.watermark.shardN` / `.lag.shardN`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplHealth {
    /// Shard key (the `shardN` gauge suffix).
    pub shard: String,
    /// Leader journal tip sequence.
    pub tip: u64,
    /// Follower acked watermark.
    pub watermark: u64,
    /// Unacked journal lines as reported by the link.
    pub lag: u64,
}

/// Lease-conservation health for one pool, from `cluster.lease.sum.*` /
/// `cluster.lease.total.*` / per-shard `cluster.lease.headroom.*.shardN`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseHealth {
    /// Pool name.
    pub pool: String,
    /// Σ per-shard leases.
    pub sum: u64,
    /// Registered pool total (Q).
    pub total: u64,
    /// Max − min per-shard lease headroom (imbalance signal for the
    /// rebalancer, not a watchdog input).
    pub headroom_spread: u64,
}

/// One folded view of cluster health, derived from a merged snapshot.
#[derive(Debug, Clone, Default)]
pub struct HealthObservation {
    /// Per-shard replication health (sorted by shard key).
    pub repl: Vec<ReplHealth>,
    /// Oldest in-doubt prepared-hold age across all shards, ms (0 = none).
    pub in_doubt_oldest_ms: u64,
    /// Per-pool lease conservation (sorted by pool).
    pub leases: Vec<LeaseHealth>,
    /// Journal records across all shards (growth side of the cadence).
    pub journal_records: u64,
    /// Compaction runs across all shards (reclaim side of the cadence).
    pub compact_runs: u64,
    /// Dedup-map entries: coordinator request dedup + PM grant tombstones.
    pub dedup_entries: u64,
    /// The monitored latency histogram, when present in the snapshot.
    pub slo_hist: Option<HistogramSnapshot>,
}

impl HealthObservation {
    /// Folds a merged snapshot into derived health values. `slo_stage`
    /// names the latency histogram the burn monitor watches (e.g.
    /// `"client.send"` or `"pm.grant"`).
    pub fn derive(snap: &TelemetrySnapshot, slo_stage: &str) -> Self {
        let mut repl: BTreeMap<String, ReplHealth> = BTreeMap::new();
        let mut leases: BTreeMap<String, LeaseHealth> = BTreeMap::new();
        let mut headrooms: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut obs = HealthObservation::default();

        for (name, &v) in &snap.gauges {
            if let Some(shard) = name.strip_prefix("cluster.repl.tip.") {
                repl_entry(&mut repl, shard).tip = v;
            } else if let Some(shard) = name.strip_prefix("cluster.repl.watermark.") {
                repl_entry(&mut repl, shard).watermark = v;
            } else if let Some(shard) = name.strip_prefix("cluster.repl.lag.") {
                repl_entry(&mut repl, shard).lag = v;
            } else if let Some(pool) = name.strip_prefix("cluster.lease.sum.") {
                lease_entry(&mut leases, pool).sum = v;
            } else if let Some(pool) = name.strip_prefix("cluster.lease.total.") {
                lease_entry(&mut leases, pool).total = v;
            } else if let Some(rest) = name.strip_prefix("cluster.lease.headroom.") {
                // Per-shard series: `cluster.lease.headroom.<pool>.shardN`
                // (the plain `.<pool>` aggregate has no `.shard` segment).
                if let Some((pool, _shard)) = rest.rsplit_once(".shard") {
                    let e = headrooms.entry(pool.to_string()).or_insert((u64::MAX, 0));
                    e.0 = e.0.min(v);
                    e.1 = e.1.max(v);
                }
            } else if name.ends_with("pm.in_doubt.oldest_ms") {
                obs.in_doubt_oldest_ms = obs.in_doubt_oldest_ms.max(v);
            } else if name.ends_with("pm.journal.records") {
                obs.journal_records += v;
            } else if name.ends_with("pm.dedup.tombstones") || name.ends_with("coord.dedup.size") {
                obs.dedup_entries += v;
            }
        }
        for (name, &v) in &snap.counters {
            if name.ends_with("pm.compact.runs") {
                obs.compact_runs += v;
            }
        }
        for (pool, (min, max)) in headrooms {
            lease_entry(&mut leases, &pool).headroom_spread = max.saturating_sub(min);
        }
        obs.repl = repl.into_values().collect();
        obs.leases = leases.into_values().collect();
        obs.slo_hist = snap.histogram(slo_stage).cloned();
        obs
    }

    /// Publishes the derived values back into `tel` as `health.*` gauges,
    /// so exporters and dashboards see the folded view next to the raw
    /// per-shard series.
    pub fn publish(&self, tel: &Telemetry) {
        tel.set_gauge("health.in_doubt.oldest_ms", self.in_doubt_oldest_ms);
        tel.set_gauge("health.journal.records", self.journal_records);
        tel.set_gauge("health.journal.compactions", self.compact_runs);
        tel.set_gauge("health.dedup.entries", self.dedup_entries);
        for r in &self.repl {
            tel.set_gauge(&format!("health.repl.lag.{}", r.shard), r.lag);
        }
        for l in &self.leases {
            tel.set_gauge(
                &format!("health.lease.imbalance.{}", l.pool),
                l.headroom_spread,
            );
        }
    }
}

fn repl_entry<'a>(map: &'a mut BTreeMap<String, ReplHealth>, shard: &str) -> &'a mut ReplHealth {
    map.entry(shard.to_string()).or_insert_with(|| ReplHealth {
        shard: shard.to_string(),
        tip: 0,
        watermark: 0,
        lag: 0,
    })
}

fn lease_entry<'a>(map: &'a mut BTreeMap<String, LeaseHealth>, pool: &str) -> &'a mut LeaseHealth {
    map.entry(pool.to_string()).or_insert_with(|| LeaseHealth {
        pool: pool.to_string(),
        sum: 0,
        total: 0,
        headroom_spread: 0,
    })
}

/// Burn-rate monitor configuration. Invariants the constructor asserts:
/// `fast_burn >= slow_burn > 1` and windows non-zero with
/// `fast_window <= slow_window` — these make the monitor's two provable
/// properties hold (see the proptests): a workload whose every batch
/// stays within budget can never trip it, and a workload whose every
/// batch burns at `fast_burn` or above trips it within the fast window.
#[derive(Debug, Clone, Copy)]
pub struct BurnRateConfig {
    /// The latency SLO. Rounded up to the next power of two so the
    /// over-SLO count is exact on the log2 bucket boundaries.
    pub slo_ns: u64,
    /// Allowed fraction of samples over the SLO (the error budget), e.g.
    /// `0.01` for "1% of requests may exceed the SLO".
    pub budget: f64,
    /// Observations in the fast window (catches a fire quickly).
    pub fast_window: usize,
    /// Observations in the slow window (rides out one noisy batch).
    pub slow_window: usize,
    /// Trip threshold on the fast-window burn (multiples of budget).
    pub fast_burn: f64,
    /// Trip threshold on the slow-window burn (multiples of budget).
    pub slow_burn: f64,
}

impl Default for BurnRateConfig {
    fn default() -> Self {
        Self {
            slo_ns: 1 << 21, // ~2.1 ms
            budget: 0.01,
            fast_window: 3,
            slow_window: 12,
            fast_burn: 4.0,
            slow_burn: 2.0,
        }
    }
}

/// The burn state after one observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BurnStatus {
    /// Burn over the fast window (observed over-SLO fraction / budget).
    pub fast_burn: f64,
    /// Burn over the slow window.
    pub slow_burn: f64,
    /// True when both windows are at or above their thresholds.
    pub tripped: bool,
}

/// Two-window SLO burn-rate monitor over a *cumulative* histogram.
///
/// Each call to [`BurnRateMonitor::observe`] diffs the histogram against
/// the previous observation to get one batch `(samples, over_slo)`, keeps
/// the last `slow_window` batches, and computes the burn — the observed
/// over-SLO fraction divided by the budget — over both windows. It trips
/// only when the fast **and** slow windows are both at or above their
/// thresholds: the fast window gives detection latency, the slow window
/// gives noise immunity.
#[derive(Debug)]
pub struct BurnRateMonitor {
    cfg: BurnRateConfig,
    /// First histogram bucket counted as over-SLO.
    over_bucket: usize,
    prev_count: u64,
    prev_over: u64,
    /// Most recent batch at the back; bounded by `slow_window`.
    window: VecDeque<(u64, u64)>,
}

impl BurnRateMonitor {
    /// Builds a monitor; panics on a config violating the documented
    /// invariants (a misconfigured watchdog is a deploy-time bug).
    pub fn new(cfg: BurnRateConfig) -> Self {
        assert!(cfg.budget > 0.0 && cfg.budget < 1.0, "budget in (0,1)");
        assert!(
            cfg.fast_burn >= cfg.slow_burn && cfg.slow_burn > 1.0,
            "fast_burn >= slow_burn > 1"
        );
        assert!(
            cfg.fast_window >= 1 && cfg.fast_window <= cfg.slow_window,
            "1 <= fast_window <= slow_window"
        );
        let effective_slo = cfg.slo_ns.max(1).next_power_of_two();
        Self {
            cfg,
            over_bucket: bucket_index(effective_slo),
            prev_count: 0,
            prev_over: 0,
            window: VecDeque::new(),
        }
    }

    /// The SLO actually enforced: `slo_ns` rounded up to a power of two
    /// (the histogram's bucket boundary).
    pub fn effective_slo_ns(&self) -> u64 {
        1u64 << self.over_bucket
    }

    /// Feeds one observation of the cumulative histogram (`None` when the
    /// stage recorded nothing yet) and returns the burn state.
    pub fn observe(&mut self, hist: Option<&HistogramSnapshot>) -> BurnStatus {
        let (count, over) = match hist {
            Some(h) => {
                let over: u64 = (self.over_bucket..BUCKETS).map(|i| h.buckets[i]).sum();
                (h.count, over)
            }
            None => (self.prev_count, self.prev_over),
        };
        if count < self.prev_count || over < self.prev_over {
            // The registry was replaced (restart); restart the diff chain.
            self.window.clear();
            self.prev_count = 0;
            self.prev_over = 0;
        }
        let batch = (count - self.prev_count, over - self.prev_over);
        self.prev_count = count;
        self.prev_over = over;
        if self.window.len() == self.cfg.slow_window {
            self.window.pop_front();
        }
        self.window.push_back(batch);

        let burn_over = |n: usize| -> f64 {
            let (mut total, mut over) = (0u64, 0u64);
            for &(t, o) in self.window.iter().rev().take(n) {
                total += t;
                over += o;
            }
            if total == 0 {
                0.0
            } else {
                (over as f64 / total as f64) / self.cfg.budget
            }
        };
        let fast = burn_over(self.cfg.fast_window);
        let slow = burn_over(self.cfg.slow_window);
        BurnStatus {
            fast_burn: fast,
            slow_burn: slow,
            tripped: fast >= self.cfg.fast_burn && slow >= self.cfg.slow_burn,
        }
    }
}

/// Thresholds for the stateful watchdogs.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Consecutive observations the follower watermark may sit frozen
    /// behind an advanced tip before stalled-replication fires.
    pub stall_ticks: u32,
    /// Oldest tolerated in-doubt prepared-hold age, in clock ms.
    pub in_doubt_age_limit_ms: u64,
    /// Burn-rate monitor configuration.
    pub burn: BurnRateConfig,
    /// Histogram stage the burn monitor watches.
    pub slo_stage: &'static str,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            stall_ticks: 2,
            in_doubt_age_limit_ms: 5_000,
            burn: BurnRateConfig::default(),
            slo_stage: "client.send",
        }
    }
}

/// Per-shard replication stall tracking.
#[derive(Debug, Default, Clone, Copy)]
struct StallTrack {
    last_watermark: u64,
    seen: bool,
    stalled_ticks: u32,
}

/// The stateful watchdog set: feed it one merged snapshot per health
/// tick; it returns the trips (empty on a healthy tick).
#[derive(Debug)]
pub struct HealthState {
    cfg: WatchdogConfig,
    burn: BurnRateMonitor,
    stalls: BTreeMap<String, StallTrack>,
    /// The most recent derived observation (for gauge publishing and
    /// incident detail).
    pub last: HealthObservation,
}

impl HealthState {
    /// Builds the watchdog set from thresholds.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Self {
            burn: BurnRateMonitor::new(cfg.burn),
            cfg,
            stalls: BTreeMap::new(),
            last: HealthObservation::default(),
        }
    }

    /// The configuration this state was built with.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// One health tick: derive the observation, advance every watchdog,
    /// and return the trips.
    pub fn observe(&mut self, snap: &TelemetrySnapshot) -> Vec<WatchdogTrip> {
        let obs = HealthObservation::derive(snap, self.cfg.slo_stage);
        let mut trips = Vec::new();

        for r in &obs.repl {
            let track = self.stalls.entry(r.shard.clone()).or_default();
            let frozen = track.seen && r.watermark == track.last_watermark;
            if r.tip > r.watermark && frozen {
                track.stalled_ticks += 1;
                if track.stalled_ticks >= self.cfg.stall_ticks {
                    trips.push(WatchdogTrip {
                        watchdog: Watchdog::StalledReplication,
                        subject: r.shard.clone(),
                        detail: format!(
                            "tip={} watermark={} frozen for {} ticks (lag {})",
                            r.tip, r.watermark, track.stalled_ticks, r.lag
                        ),
                    });
                }
            } else {
                track.stalled_ticks = 0;
            }
            track.last_watermark = r.watermark;
            track.seen = true;
        }

        if obs.in_doubt_oldest_ms > self.cfg.in_doubt_age_limit_ms {
            trips.push(WatchdogTrip {
                watchdog: Watchdog::InDoubtAge,
                subject: "coordinator".into(),
                detail: format!(
                    "oldest in-doubt hold {} ms > limit {} ms",
                    obs.in_doubt_oldest_ms, self.cfg.in_doubt_age_limit_ms
                ),
            });
        }

        for l in &obs.leases {
            if l.sum != l.total {
                trips.push(WatchdogTrip {
                    watchdog: Watchdog::LeaseSumInvariant,
                    subject: l.pool.clone(),
                    detail: format!(
                        "sum(leases)={} != pool total={} ({})",
                        l.sum,
                        l.total,
                        if l.sum < l.total {
                            "stranded capacity"
                        } else {
                            "oversold"
                        }
                    ),
                });
            }
        }

        let status = self.burn.observe(obs.slo_hist.as_ref());
        if status.tripped {
            trips.push(WatchdogTrip {
                watchdog: Watchdog::SloBurnRate,
                subject: self.cfg.slo_stage.to_string(),
                detail: format!(
                    "fast burn {:.1}x / slow burn {:.1}x over budget {} (SLO {} ns)",
                    status.fast_burn,
                    status.slow_burn,
                    self.cfg.burn.budget,
                    self.burn.effective_slo_ns()
                ),
            });
        }

        self.last = obs;
        trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_snapshot(tick: u64) -> TelemetrySnapshot {
        let tel = Telemetry::shared();
        // Replication: tip advances, watermark keeps up.
        tel.set_gauge("cluster.repl.tip.shard0", 10 * tick);
        tel.set_gauge("cluster.repl.watermark.shard0", 10 * tick);
        tel.set_gauge("cluster.repl.lag.shard0", 0);
        // No in-doubt holds, leases conserved.
        tel.set_gauge("shard0.e0.pm.in_doubt.oldest_ms", 0);
        tel.set_gauge("cluster.lease.sum.pool-0", 1_000);
        tel.set_gauge("cluster.lease.total.pool-0", 1_000);
        // Latency comfortably under the default ~2 ms SLO.
        for _ in 0..100 {
            tel.record_ns("client.send", 50_000 * (1 + tick % 3));
        }
        tel.snapshot()
    }

    #[test]
    fn every_watchdog_is_silent_on_healthy_ticks() {
        let mut hs = HealthState::new(WatchdogConfig::default());
        for tick in 1..=20 {
            let trips = hs.observe(&healthy_snapshot(tick));
            assert!(trips.is_empty(), "tick {tick} tripped: {trips:?}");
        }
        // The observation derived something real, not vacuous silence.
        assert_eq!(hs.last.repl.len(), 1);
        assert_eq!(hs.last.leases.len(), 1);
        assert!(hs.last.slo_hist.is_some());
    }

    #[test]
    fn stalled_replication_trips_after_consecutive_frozen_ticks() {
        let mut hs = HealthState::new(WatchdogConfig::default());
        let snap = |tip: u64, wm: u64| {
            let tel = Telemetry::shared();
            tel.set_gauge("cluster.repl.tip.shard1", tip);
            tel.set_gauge("cluster.repl.watermark.shard1", wm);
            tel.set_gauge("cluster.repl.lag.shard1", tip - wm);
            tel.snapshot()
        };
        assert!(hs.observe(&snap(5, 5)).is_empty());
        // Tip runs ahead, watermark frozen: first frozen tick arms, the
        // second (>= stall_ticks = 2) trips.
        assert!(hs.observe(&snap(9, 5)).is_empty());
        let trips = hs.observe(&snap(12, 5));
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].watchdog, Watchdog::StalledReplication);
        // Watermark moves again: the dog re-arms silently.
        assert!(hs.observe(&snap(16, 16)).is_empty());
    }

    #[test]
    fn in_doubt_age_trips_over_limit_and_clears() {
        let mut hs = HealthState::new(WatchdogConfig::default());
        let snap = |age: u64| {
            let tel = Telemetry::shared();
            tel.set_gauge("shard0.e0.pm.in_doubt.oldest_ms", age);
            tel.snapshot()
        };
        assert!(hs.observe(&snap(4_999)).is_empty());
        let trips = hs.observe(&snap(5_001));
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].watchdog, Watchdog::InDoubtAge);
        assert!(hs.observe(&snap(0)).is_empty());
    }

    #[test]
    fn lease_sum_probe_trips_both_directions() {
        let mut hs = HealthState::new(WatchdogConfig::default());
        let snap = |sum: u64| {
            let tel = Telemetry::shared();
            tel.set_gauge("cluster.lease.sum.hot", sum);
            tel.set_gauge("cluster.lease.total.hot", 500);
            tel.snapshot()
        };
        assert!(hs.observe(&snap(500)).is_empty());
        let stranded = hs.observe(&snap(420));
        assert_eq!(stranded.len(), 1);
        assert_eq!(stranded[0].watchdog, Watchdog::LeaseSumInvariant);
        assert!(stranded[0].detail.contains("stranded"));
        let oversold = hs.observe(&snap(501));
        assert!(oversold[0].detail.contains("oversold"));
        assert!(hs.observe(&snap(500)).is_empty());
    }

    #[test]
    fn burn_monitor_trips_on_sustained_violation_not_on_clean_traffic() {
        let cfg = BurnRateConfig::default();
        let mut mon = BurnRateMonitor::new(cfg);
        let tel = Telemetry::shared();
        // Clean batches: all samples far under the SLO.
        for _ in 0..10 {
            for _ in 0..50 {
                tel.record_ns("client.send", 100_000);
            }
            let snap = tel.snapshot();
            let st = mon.observe(snap.histogram("client.send"));
            assert!(!st.tripped, "clean batch tripped: {st:?}");
        }
        // A fire: every sample blows the SLO. Trips immediately (both
        // windows saturate at burn = 1/budget).
        for _ in 0..50 {
            tel.record_ns("client.send", 50_000_000);
        }
        let snap = tel.snapshot();
        let st = mon.observe(snap.histogram("client.send"));
        assert!(st.tripped, "sustained violation must trip: {st:?}");
    }

    #[test]
    fn burn_monitor_rounds_slo_to_bucket_boundary() {
        let mon = BurnRateMonitor::new(BurnRateConfig {
            slo_ns: 3_000_000,
            ..BurnRateConfig::default()
        });
        assert_eq!(mon.effective_slo_ns(), 4_194_304);
    }

    #[test]
    fn derive_folds_journal_compaction_and_dedup_series() {
        let tel = Telemetry::shared();
        tel.set_gauge("shard0.e0.pm.journal.records", 120);
        tel.set_gauge("shard1.e0.pm.journal.records", 80);
        tel.counter("shard0.e0.pm.compact.runs")
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        tel.set_gauge("coord.dedup.size", 7);
        tel.set_gauge("shard0.e0.pm.dedup.tombstones", 5);
        tel.set_gauge("cluster.lease.headroom.hot.shard0", 90);
        tel.set_gauge("cluster.lease.headroom.hot.shard1", 10);
        let obs = HealthObservation::derive(&tel.snapshot(), "client.send");
        assert_eq!(obs.journal_records, 200);
        assert_eq!(obs.compact_runs, 3);
        assert_eq!(obs.dedup_entries, 12);
        assert_eq!(obs.leases.len(), 1);
        assert_eq!(obs.leases[0].headroom_spread, 80);
        // Publishing writes the folded view as health.* gauges.
        let out = Telemetry::shared();
        obs.publish(&out);
        let snap = out.snapshot();
        assert_eq!(snap.gauge("health.journal.records"), 200);
        assert_eq!(snap.gauge("health.lease.imbalance.hot"), 80);
    }
}
