//! Flight recorder: a bounded per-node ring of structured state-transition
//! events, dumped as a trace-correlated incident report when something
//! goes wrong (DESIGN.md §17).
//!
//! Spans answer "where did the time go"; the flight recorder answers
//! "what was the node *doing*". Every coordinator, shard leader and
//! follower owns a [`FlightRecorder`] and records coarse state
//! transitions — 2PC phase changes, lease withdraws/deposits, follower
//! promotions, compaction swaps — as [`HealthEvent`]s. The ring is
//! bounded (old events fall off), recording is a short mutex hold on a
//! cold path (state transitions, not per-request work), and each event
//! captures the ambient [`TraceContext`](crate::TraceContext) when one is
//! active, so an incident report can be joined against the span ring.
//!
//! On an audit violation, crash, or watchdog trip, [`FlightRecorder::incident`]
//! snapshots the recent event window together with a telemetry snapshot
//! into an [`IncidentReport`] whose [`IncidentReport::to_json`] output is
//! machine-parseable (validated by [`export::validate_json`](crate::export::validate_json)
//! in the doctor gate).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::export::{json_escape, to_json};
use crate::registry::TelemetrySnapshot;
use crate::span::current_trace;

/// Default bound on the event ring: enough to hold the full state-machine
/// history of a sweep round while staying a few tens of KiB per node.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One recorded state transition.
#[derive(Debug, Clone)]
pub struct HealthEvent {
    /// Monotonic per-recorder sequence number (never reused; gaps mean
    /// the ring dropped older events).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch. Recorders built from one
    /// shared epoch ([`FlightRecorder::with_epoch`]) produce comparable
    /// timestamps across nodes.
    pub at_ns: u64,
    /// The ambient trace active when the event was recorded, if any —
    /// lets a postmortem join recorder events against the span ring.
    pub trace: Option<u64>,
    /// Event kind from the fixed taxonomy (e.g. `"2pc.commit"`,
    /// `"lease.withdraw"`, `"failover.promote"`, `"compact.swap"`).
    pub kind: &'static str,
    /// Free-form detail (ids, quantities, endpoints).
    pub detail: String,
}

struct RecorderInner {
    next_seq: u64,
    ring: VecDeque<HealthEvent>,
}

/// A bounded ring of [`HealthEvent`]s owned by one node.
pub struct FlightRecorder {
    node: String,
    epoch: Instant,
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder for `node` with its own epoch and the default capacity.
    pub fn new(node: impl Into<String>) -> Arc<Self> {
        Self::with_epoch(node, Instant::now())
    }

    /// A recorder for `node` sharing `epoch` with sibling recorders, so
    /// `at_ns` values are comparable across one cluster's nodes.
    pub fn with_epoch(node: impl Into<String>, epoch: Instant) -> Arc<Self> {
        Arc::new(Self {
            node: node.into(),
            epoch,
            capacity: DEFAULT_EVENT_CAPACITY,
            inner: Mutex::new(RecorderInner {
                next_seq: 0,
                ring: VecDeque::new(),
            }),
        })
    }

    /// The node name this recorder was built for.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The epoch `at_ns` values are measured from (share it with
    /// [`FlightRecorder::with_epoch`] to build sibling recorders).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records one state transition, stamping the sequence number, the
    /// epoch-relative time, and the ambient trace (when one is active).
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) {
        let event = HealthEvent {
            seq: 0, // stamped under the lock
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            trace: current_trace().map(|ctx| ctx.trace.0),
            kind,
            detail: detail.into(),
        };
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        let mut event = event;
        event.seq = seq;
        inner.ring.push_back(event);
    }

    /// The retained event window, oldest first.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// True when nothing has been recorded (or everything fell off).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Total events ever recorded, including those the ring dropped.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Builds an incident report from the current event window plus the
    /// supplied telemetry snapshot. `reason` names what tripped (audit
    /// violation, crash, watchdog).
    pub fn incident(&self, reason: &str, snapshot: &TelemetrySnapshot) -> IncidentReport {
        IncidentReport {
            node: self.node.clone(),
            reason: reason.to_string(),
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            events: self.events(),
            snapshot: snapshot.clone(),
        }
    }
}

/// A postmortem bundle: what the node was doing (recent events) and what
/// the metrics looked like (snapshot) when `reason` fired.
#[derive(Debug, Clone)]
pub struct IncidentReport {
    /// Node the report came from.
    pub node: String,
    /// What fired: watchdog name, audit violation, or crash description.
    pub reason: String,
    /// When the report was cut, in nanoseconds since the recorder epoch.
    pub at_ns: u64,
    /// The retained event window, oldest first.
    pub events: Vec<HealthEvent>,
    /// Registry snapshot at report time.
    pub snapshot: TelemetrySnapshot,
}

impl IncidentReport {
    /// Serialises the report as a single JSON object. The output is valid
    /// JSON by construction (all strings escaped); the doctor gate
    /// re-validates it with [`export::validate_json`](crate::export::validate_json)
    /// anyway, so a serialisation regression fails loudly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"incident\":{");
        out.push_str(&format!("\"node\":\"{}\",", json_escape(&self.node)));
        out.push_str(&format!("\"reason\":\"{}\",", json_escape(&self.reason)));
        out.push_str(&format!("\"at_ns\":{},", self.at_ns));
        out.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_ns\":{},\"trace\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.at_ns,
                e.trace
                    .map_or("null".to_string(), |t| format!("\"{t:016x}\"")),
                json_escape(e.kind),
                json_escape(&e.detail),
            ));
        }
        out.push_str("],");
        out.push_str(&format!("\"telemetry\":{}", to_json(&self.snapshot)));
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;
    use crate::span::{push_trace, TraceContext, TraceId};
    use crate::SpanId;

    #[test]
    fn ring_is_bounded_and_seqs_are_monotonic() {
        let rec = FlightRecorder::with_epoch("shard0", Instant::now());
        for i in 0..(DEFAULT_EVENT_CAPACITY + 10) {
            rec.record("2pc.begin", format!("txn {i}"));
        }
        let events = rec.events();
        assert_eq!(events.len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(rec.recorded(), (DEFAULT_EVENT_CAPACITY + 10) as u64);
        // Oldest events fell off; the window is the most recent ones.
        assert_eq!(events.first().unwrap().seq, 10);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn events_capture_the_ambient_trace() {
        let rec = FlightRecorder::new("coordinator");
        rec.record("lease.withdraw", "pool-a -3");
        let _guard = push_trace(TraceContext {
            trace: TraceId(0xDEAD_BEEF),
            parent: SpanId(1),
        });
        rec.record("lease.deposit", "pool-a +3");
        let events = rec.events();
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].trace, Some(0xDEAD_BEEF));
    }

    #[test]
    fn incident_json_is_parseable() {
        let rec = FlightRecorder::new("shard1");
        rec.record("failover.kill", "leader shard1.e0 \"quoted\" \\ tricky");
        rec.record("failover.promote", "follower shard1.e1");
        let tel = crate::Telemetry::shared();
        tel.incr("cluster.failover.promotions");
        tel.record_ns("pm.grant", 1_500);
        let report = rec.incident("watchdog:stalled-replication", &tel.snapshot());
        let json = report.to_json();
        validate_json(&json).expect("incident report must be valid JSON");
        assert!(json.contains("failover.promote"));
        assert!(json.contains("stalled-replication"));
    }
}
