//! The [`Telemetry`] registry: named histograms and counters, the span
//! ring, and id minting — one handle threaded through the whole stack.
//!
//! The registry is designed so the *disabled* path costs nothing: every
//! component holds an `Option<Arc<Telemetry>>` which defaults to `None`,
//! and all recording sites are behind that check. Enabled-path recording
//! is a few relaxed atomics (histograms/counters) or one ring push
//! (spans); snapshots copy atomics without pausing writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::ring::SpanRing;
use crate::span::{
    current_trace, FaultTag, SpanId, SpanKind, SpanOutcome, SpanRecord, TraceContext, TraceId,
};

/// Default span-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 8_192;

/// The telemetry registry. See the module docs.
pub struct Telemetry {
    epoch: Instant,
    ring: SpanRing,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    next_trace: AtomicU64,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("ring", &self.ring)
            .field("histograms", &self.hists.read().len())
            .field("counters", &self.counters.read().len())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A registry with the default ring capacity.
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A registry whose span ring retains at most `capacity` spans.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            ring: SpanRing::new(capacity),
            hists: RwLock::new(BTreeMap::new()),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
        }
    }

    /// Convenience: a shared registry handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Mints a fresh trace id (one per logical client operation).
    pub fn mint_trace(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Mints a fresh span id.
    pub fn mint_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// The span ring (for auditors and tests).
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// Get-or-create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.hists.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.hists
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Records `ns` into the named histogram.
    pub fn record_ns(&self, name: &str, ns: u64) {
        self.histogram(name).record(ns);
    }

    /// Records a duration into the named histogram.
    pub fn record_duration(&self, name: &str, d: std::time::Duration) {
        self.histogram(name).record_duration(d);
    }

    /// Get-or-create the named counter.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Adds 1 to the named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Get-or-create the named gauge — a last-value-wins level (journal
    /// length, live-promise count), unlike the monotone counters.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Stores `value` into the named gauge.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauge(name).store(value, Ordering::Relaxed);
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Starts a span draft for a step that began at `started`. The draft
    /// joins the ambient trace context ([`crate::push_trace`]) if one is
    /// installed, otherwise it roots a fresh trace. Call
    /// [`SpanDraft::finish`] to time and record it.
    pub fn span_since(&self, kind: SpanKind, started: Instant) -> SpanDraft<'_> {
        let (trace, parent) = match current_trace() {
            Some(ctx) => (ctx.trace, Some(ctx.parent)),
            None => (self.mint_trace(), None),
        };
        SpanDraft {
            tel: self,
            started,
            rec: SpanRecord {
                trace,
                span: self.mint_span(),
                parent,
                kind,
                start_ns: 0,
                dur_ns: 0,
                promise: None,
                outcome: SpanOutcome::Ok,
                fault: None,
                note: None,
            },
        }
    }

    /// Starts a span draft whose step begins now.
    pub fn span(&self, kind: SpanKind) -> SpanDraft<'_> {
        self.span_since(kind, Instant::now())
    }

    /// Records an instantaneous lifecycle event (zero-duration span).
    pub fn event(&self, kind: SpanKind, promise: u64) {
        self.span(kind).promise(promise).finish();
    }

    /// Nanoseconds between the registry epoch and `t` (0 if `t` precedes
    /// the epoch).
    fn since_epoch_ns(&self, t: Instant) -> u64 {
        u64::try_from(t.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    /// A point-in-time copy of every histogram and counter. Traffic keeps
    /// flowing; see [`Histogram::snapshot`] for the consistency model.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let histograms = self
            .hists
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        TelemetrySnapshot {
            histograms,
            counters,
            gauges,
            spans_recorded: self.ring.recorded(),
            spans_dropped: self.ring.dropped(),
        }
    }
}

/// A span being assembled; records itself into the ring on
/// [`SpanDraft::finish`].
#[derive(Debug)]
pub struct SpanDraft<'a> {
    tel: &'a Telemetry,
    started: Instant,
    rec: SpanRecord,
}

impl SpanDraft<'_> {
    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.rec.span
    }

    /// A context naming this span as the parent, for nesting child spans.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace: self.rec.trace,
            parent: self.rec.span,
        }
    }

    /// Sets the promise this span is about.
    pub fn promise(mut self, id: u64) -> Self {
        self.rec.promise = Some(id);
        self
    }

    /// Overrides the causal parent (defaults to the ambient context).
    pub fn parent(mut self, parent: SpanId) -> Self {
        self.rec.parent = Some(parent);
        self
    }

    /// Sets the outcome (defaults to [`SpanOutcome::Ok`]).
    pub fn outcome(mut self, outcome: SpanOutcome) -> Self {
        self.rec.outcome = outcome;
        self
    }

    /// Tags the span with an observed injected fault.
    pub fn fault(mut self, tag: FaultTag) -> Self {
        self.rec.fault = Some(tag);
        self
    }

    /// Attaches free-form detail (pool, cause, attempt number).
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.rec.note = Some(note.into());
        self
    }

    /// Times the span (start → now) and pushes it into the ring.
    pub fn finish(self) {
        let dur = self.started.elapsed();
        self.finish_with(dur);
    }

    /// Pushes the span with an already-measured duration, for sites that
    /// share one clock read between a histogram sample and the span.
    pub fn finish_with(mut self, dur: std::time::Duration) {
        self.rec.start_ns = self.tel.since_epoch_ns(self.started);
        self.rec.dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        self.tel.ring.push(self.rec);
    }
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last-value-wins levels) by name.
    pub gauges: BTreeMap<String, u64>,
    /// Total spans pushed over the ring's lifetime.
    pub spans_recorded: u64,
    /// Spans overwritten by newer ones.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Folds `other`'s metrics into this snapshot under `label.`-prefixed
    /// names (`shard1.pm.grant`, …). A cluster harness snapshots each
    /// shard's private registry and absorbs them all into one snapshot
    /// whose per-shard series stay distinguishable; ring totals accumulate.
    pub fn absorb_prefixed(&mut self, label: &str, other: &TelemetrySnapshot) {
        for (k, v) in &other.histograms {
            self.histograms.insert(format!("{label}.{k}"), *v);
        }
        for (k, v) in &other.counters {
            self.counters.insert(format!("{label}.{k}"), *v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(format!("{label}.{k}"), *v);
        }
        self.spans_recorded += other.spans_recorded;
        self.spans_dropped += other.spans_dropped;
    }

    /// Names of exported histograms with zero samples (a healthy snapshot
    /// from an instrumented run has none).
    pub fn empty_histograms(&self) -> Vec<&str> {
        self.histograms
            .iter()
            .filter(|(_, h)| h.is_empty())
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_trace;

    #[test]
    fn histograms_and_counters_are_get_or_create() {
        let tel = Telemetry::new();
        tel.record_ns("stage.a", 100);
        tel.record_ns("stage.a", 200);
        tel.incr("hits");
        tel.add("hits", 2);
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("stage.a").unwrap().count, 2);
        assert_eq!(snap.counter("hits"), 3);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.empty_histograms().is_empty());
    }

    #[test]
    fn gauges_are_last_value_wins_and_absorb_with_prefix() {
        let tel = Telemetry::new();
        tel.set_gauge("pm.journal.records", 40);
        tel.set_gauge("pm.journal.records", 7);
        let snap = tel.snapshot();
        assert_eq!(snap.gauge("pm.journal.records"), 7);
        assert_eq!(snap.gauge("missing"), 0);
        let mut merged = TelemetrySnapshot::default();
        merged.absorb_prefixed("shard0", &snap);
        assert_eq!(merged.gauge("shard0.pm.journal.records"), 7);
    }

    #[test]
    fn spans_join_ambient_context_or_root_fresh_traces() {
        let tel = Telemetry::new();
        // No ambient context: roots its own trace.
        tel.span(SpanKind::PmGrant).promise(7).finish();
        // Ambient context: joins it.
        let ctx = TraceContext {
            trace: tel.mint_trace(),
            parent: tel.mint_span(),
        };
        {
            let _g = push_trace(ctx);
            tel.span(SpanKind::PmRelease).promise(7).finish();
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].trace, ctx.trace);
        assert_eq!(spans[1].parent, Some(ctx.parent));
        assert_ne!(spans[0].trace, spans[1].trace);
    }

    #[test]
    fn snapshot_reports_ring_pressure() {
        let tel = Telemetry::with_ring_capacity(2);
        for i in 0..5 {
            tel.event(SpanKind::PmExpire, i);
        }
        let snap = tel.snapshot();
        assert_eq!(snap.spans_recorded, 5);
        assert_eq!(snap.spans_dropped, 3);
        assert_eq!(tel.spans().len(), 2);
    }
}
