//! Trace-replay lifecycle auditor.
//!
//! Reconstructs each promise's lifecycle from the span ring —
//! requested→granted→checked→released/expired — and asserts it against
//! ground truth derived from the promise journal. The auditor is
//! deliberately conservative about the ring's bounded retention: a
//! missing *older* span (overwritten) is never a violation; only spans
//! that are present and contradict each other or the journal are.
//!
//! The telemetry crate sits below `promises-core`, so the journal is
//! passed in pre-digested as [`JournalFacts`] (which promise ids were
//! granted / released / expired) rather than as journal entries.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::span::{SpanKind, SpanOutcome, SpanRecord};

/// Journal-derived ground truth: which promise ids the journal records as
/// granted, released, and expired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalFacts {
    /// Ids with a Grant record.
    pub granted: BTreeSet<u64>,
    /// Ids with a Release record.
    pub released: BTreeSet<u64>,
    /// Ids with an Expire record.
    pub expired: BTreeSet<u64>,
}

/// Result of auditing one run's spans against the journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Distinct promise ids observed in spans.
    pub promises: usize,
    /// Promises whose spans show both a grant and a terminal event.
    pub complete: usize,
    /// Ordering or journal-consistency violations, human-readable.
    pub violations: Vec<String>,
}

impl LifecycleReport {
    /// True when no lifecycle violated ordering or journal consistency.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Default)]
struct Lifecycle {
    grant: Option<SpanRecord>,
    checks: Vec<SpanRecord>,
    releases: Vec<SpanRecord>,
    expires: Vec<SpanRecord>,
}

/// Audits `spans` against `journal`. See the module docs for the rules.
pub fn audit_lifecycles(spans: &[SpanRecord], journal: &JournalFacts) -> LifecycleReport {
    let mut by_promise: BTreeMap<u64, Lifecycle> = BTreeMap::new();
    for s in spans {
        let Some(id) = s.promise else { continue };
        let life = by_promise.entry(id).or_default();
        match (s.kind, s.outcome) {
            // A deduped grant re-observes an earlier grant (possibly after
            // arbitrary delay) and carries no fresh lifecycle information.
            (SpanKind::PmGrant, SpanOutcome::Deduped) => {}
            (SpanKind::PmGrant, SpanOutcome::Ok) if life.grant.is_none() => {
                life.grant = Some(s.clone());
            }
            (SpanKind::PmCheck, _) => life.checks.push(s.clone()),
            (SpanKind::PmRelease, SpanOutcome::Ok) => life.releases.push(s.clone()),
            (SpanKind::PmExpire, SpanOutcome::Ok) => life.expires.push(s.clone()),
            _ => {}
        }
    }

    let mut report = LifecycleReport {
        promises: by_promise.len(),
        ..LifecycleReport::default()
    };

    for (id, life) in &by_promise {
        let terminal_end = life
            .releases
            .iter()
            .chain(life.expires.iter())
            .map(|s| s.end_ns())
            .min();
        if life.grant.is_some() && terminal_end.is_some() {
            report.complete += 1;
        }

        if let Some(grant) = &life.grant {
            // granted must precede every later lifecycle event.
            for (what, events) in [
                ("checked", &life.checks),
                ("released", &life.releases),
                ("expired", &life.expires),
            ] {
                for e in events.iter() {
                    if e.end_ns() < grant.start_ns {
                        report.violations.push(format!(
                            "promise {id}: {what} at {}ns before granted at {}ns",
                            e.end_ns(),
                            grant.start_ns
                        ));
                    }
                }
            }
            // A grant span must be backed by a journal Grant record.
            if !journal.granted.is_empty() && !journal.granted.contains(id) {
                report.violations.push(format!(
                    "promise {id}: grant span has no journal Grant record"
                ));
            }
        }

        // At most one terminal state: released and expired are exclusive.
        if !life.releases.is_empty() && !life.expires.is_empty() {
            report
                .violations
                .push(format!("promise {id}: both released and expired"));
        }
        if life.releases.len() > 1 {
            report.violations.push(format!(
                "promise {id}: released {} times",
                life.releases.len()
            ));
        }

        // No successful check may start after the terminal event ended.
        if let Some(term) = terminal_end {
            for c in life.checks.iter().filter(|c| c.outcome == SpanOutcome::Ok) {
                if c.start_ns > term {
                    report.violations.push(format!(
                        "promise {id}: checked at {}ns after terminal at {term}ns",
                        c.start_ns
                    ));
                }
            }
        }

        // Terminal spans must be backed by the matching journal record.
        for s in &life.releases {
            if !journal.released.contains(id) {
                report.violations.push(format!(
                    "promise {id}: release span ({}) has no journal Release record",
                    s.kind.as_str()
                ));
            }
        }
        for s in &life.expires {
            if !journal.expired.contains(id) {
                report.violations.push(format!(
                    "promise {id}: expire span ({}) has no journal Expire record",
                    s.kind.as_str()
                ));
            }
        }
    }
    report
}

/// One shard's evidence for a cluster audit: its label, the spans drained
/// from its private ring, and its journal-derived ground truth.
#[derive(Debug, Clone, Default)]
pub struct ShardEvidence {
    /// Shard label (`shard0`, …) used to attribute violations.
    pub label: String,
    /// Spans from the shard's own telemetry ring.
    pub spans: Vec<SpanRecord>,
    /// Ground truth from the shard's journal.
    pub journal: JournalFacts,
}

/// Result of auditing a cluster run: per-shard lifecycle reports plus
/// cross-shard coordination checks joined on trace ids.
#[derive(Debug, Clone, Default)]
pub struct ClusterLifecycleReport {
    /// Each shard's lifecycle report, violation messages prefixed with the
    /// shard label.
    pub shards: Vec<(String, LifecycleReport)>,
    /// Traces whose promise-lifecycle spans landed on two or more shards —
    /// the cross-shard transactions the coordinator actually split.
    pub cross_shard_traces: usize,
    /// Orphan Abort replays the coordinator tolerated (an Abort whose
    /// Begin was compacted away or double-logged). A no-op, not a
    /// violation — but surfaced so operators see the count.
    pub orphan_aborts: usize,
    /// Cross-shard coordination violations (commit/abort exclusivity,
    /// decisions out of order with their prepare).
    pub violations: Vec<String>,
}

impl ClusterLifecycleReport {
    /// True when every shard audit passed and no coordination rule fired.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.shards.iter().all(|(_, r)| r.ok())
    }

    /// Every violation, shard-attributed, in one list.
    pub fn all_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (label, r) in &self.shards {
            out.extend(r.violations.iter().map(|v| format!("{label}: {v}")));
        }
        out.extend(self.violations.iter().cloned());
        out
    }
}

/// Audits a cluster run: each shard's spans against its own journal via
/// [`audit_lifecycles`], then the coordinator's spans for cross-shard
/// coordination invariants, joining shard spans to coordinator decisions
/// by trace id (shards adopt the coordinator's trace from the envelope).
///
/// Timestamps are never compared *across* rings — each registry has its
/// own epoch — so cross-shard rules use only per-trace span presence and
/// within-ring ordering. Like [`audit_lifecycles`], absence is not a
/// violation (rings are bounded); contradiction is.
pub fn audit_cluster_lifecycles(
    coordinator_spans: &[SpanRecord],
    shards: &[ShardEvidence],
) -> ClusterLifecycleReport {
    let mut report = ClusterLifecycleReport::default();
    for sh in shards {
        report
            .shards
            .push((sh.label.clone(), audit_lifecycles(&sh.spans, &sh.journal)));
    }

    // How many traces touched more than one shard's lifecycle spans.
    let mut shards_by_trace: BTreeMap<u64, BTreeSet<usize>> = BTreeMap::new();
    for (i, sh) in shards.iter().enumerate() {
        for s in sh.spans.iter().filter(|s| s.promise.is_some()) {
            shards_by_trace.entry(s.trace.0).or_default().insert(i);
        }
    }
    report.cross_shard_traces = shards_by_trace.values().filter(|s| s.len() >= 2).count();

    // Coordinator rules, per trace.
    #[derive(Default)]
    struct CoordTrace {
        prepares: Vec<SpanRecord>,
        commits: Vec<SpanRecord>,
        aborts: Vec<SpanRecord>,
    }
    let mut by_trace: BTreeMap<u64, CoordTrace> = BTreeMap::new();
    for s in coordinator_spans {
        // Recovery marks a tolerated orphan-abort replay with a Deduped
        // CoordAbort span: it decided nothing, so it joins no trace's
        // commit/abort bookkeeping — but it is counted, not dropped.
        if s.kind == SpanKind::CoordAbort
            && s.outcome == SpanOutcome::Deduped
            && s.note
                .as_deref()
                .is_some_and(|n| n.starts_with("orphan-abort"))
        {
            report.orphan_aborts += 1;
            continue;
        }
        let t = by_trace.entry(s.trace.0).or_default();
        match (s.kind, s.outcome) {
            (SpanKind::CoordPrepare, _) => t.prepares.push(s.clone()),
            (SpanKind::CoordCommit, SpanOutcome::Ok) => t.commits.push(s.clone()),
            (SpanKind::CoordAbort, SpanOutcome::Ok) => t.aborts.push(s.clone()),
            _ => {}
        }
    }
    for (trace, t) in &by_trace {
        if !t.commits.is_empty() && !t.aborts.is_empty() {
            report.violations.push(format!(
                "trace {trace}: coordinator both committed and aborted"
            ));
        }
        if t.commits.len() > 1 {
            report.violations.push(format!(
                "trace {trace}: coordinator committed {} times",
                t.commits.len()
            ));
        }
        // A decision must not end before its prepare began (same ring, so
        // timestamps are comparable).
        if let Some(prep_start) = t.prepares.iter().map(|s| s.start_ns).min() {
            for d in t.commits.iter().chain(t.aborts.iter()) {
                if d.end_ns() < prep_start {
                    report.violations.push(format!(
                        "trace {trace}: decision at {}ns before prepare at {prep_start}ns",
                        d.end_ns()
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};

    fn span(kind: SpanKind, promise: u64, start_ns: u64, outcome: SpanOutcome) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            span: SpanId(start_ns),
            parent: None,
            kind,
            start_ns,
            dur_ns: 10,
            promise: Some(promise),
            outcome,
            fault: None,
            note: None,
        }
    }

    fn journal(granted: &[u64], released: &[u64], expired: &[u64]) -> JournalFacts {
        JournalFacts {
            granted: granted.iter().copied().collect(),
            released: released.iter().copied().collect(),
            expired: expired.iter().copied().collect(),
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let spans = vec![
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
            span(SpanKind::PmCheck, 1, 200, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 1, 300, SpanOutcome::Ok),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.promises, 1);
        assert_eq!(r.complete, 1);
    }

    #[test]
    fn release_before_grant_is_a_violation() {
        let spans = vec![
            span(SpanKind::PmRelease, 1, 50, SpanOutcome::Ok),
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(!r.ok());
        assert!(r.violations[0].contains("before granted"));
    }

    #[test]
    fn double_terminal_is_a_violation() {
        let spans = vec![
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 1, 200, SpanOutcome::Ok),
            span(SpanKind::PmExpire, 1, 300, SpanOutcome::Ok),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[1]));
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("both released and expired")));
    }

    #[test]
    fn span_without_journal_backing_is_a_violation() {
        let spans = vec![
            span(SpanKind::PmGrant, 2, 100, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 2, 200, SpanOutcome::Ok),
        ];
        // Journal knows promise 1 only.
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.violations.iter().any(|v| v.contains("no journal Grant")));
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("no journal Release")));
    }

    #[test]
    fn overwritten_grant_span_is_not_a_violation() {
        // The ring dropped the grant span; only the release survives, and
        // the journal confirms it. Bounded retention must not false-alarm.
        let spans = vec![span(SpanKind::PmRelease, 1, 200, SpanOutcome::Ok)];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.complete, 0);
    }

    fn traced(
        kind: SpanKind,
        trace: u64,
        promise: Option<u64>,
        start_ns: u64,
        outcome: SpanOutcome,
    ) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(start_ns),
            parent: None,
            kind,
            start_ns,
            dur_ns: 10,
            promise,
            outcome,
            fault: None,
            note: None,
        }
    }

    #[test]
    fn cluster_audit_joins_traces_and_passes_clean_runs() {
        let coord = vec![
            traced(SpanKind::CoordPrepare, 7, None, 100, SpanOutcome::Ok),
            traced(SpanKind::CoordCommit, 7, None, 300, SpanOutcome::Ok),
        ];
        let shards = vec![
            ShardEvidence {
                label: "shard0".into(),
                spans: vec![traced(SpanKind::PmGrant, 7, Some(1), 150, SpanOutcome::Ok)],
                journal: journal(&[1], &[], &[]),
            },
            ShardEvidence {
                label: "shard1".into(),
                spans: vec![traced(SpanKind::PmGrant, 7, Some(2), 160, SpanOutcome::Ok)],
                journal: journal(&[2], &[], &[]),
            },
        ];
        let r = audit_cluster_lifecycles(&coord, &shards);
        assert!(r.ok(), "{:?}", r.all_violations());
        assert_eq!(r.cross_shard_traces, 1);
        assert_eq!(r.shards.len(), 2);
    }

    #[test]
    fn cluster_audit_flags_commit_and_abort_on_one_trace() {
        let coord = vec![
            traced(SpanKind::CoordPrepare, 9, None, 100, SpanOutcome::Ok),
            traced(SpanKind::CoordCommit, 9, None, 200, SpanOutcome::Ok),
            traced(SpanKind::CoordAbort, 9, None, 300, SpanOutcome::Ok),
        ];
        let r = audit_cluster_lifecycles(&coord, &[]);
        assert!(!r.ok());
        assert!(r.violations[0].contains("both committed and aborted"));
    }

    #[test]
    fn cluster_audit_flags_decision_before_prepare() {
        let coord = vec![
            traced(SpanKind::CoordCommit, 9, None, 50, SpanOutcome::Ok),
            traced(SpanKind::CoordPrepare, 9, None, 100, SpanOutcome::Ok),
        ];
        let r = audit_cluster_lifecycles(&coord, &[]);
        assert!(r.violations.iter().any(|v| v.contains("before prepare")));
    }

    #[test]
    fn cluster_audit_attributes_shard_violations() {
        let shards = vec![ShardEvidence {
            label: "shard1".into(),
            spans: vec![
                traced(SpanKind::PmGrant, 3, Some(5), 100, SpanOutcome::Ok),
                traced(SpanKind::PmRelease, 3, Some(5), 200, SpanOutcome::Ok),
                traced(SpanKind::PmRelease, 3, Some(5), 300, SpanOutcome::Ok),
            ],
            journal: journal(&[5], &[5], &[]),
        }];
        let r = audit_cluster_lifecycles(&[], &shards);
        assert!(!r.ok());
        assert!(r.all_violations()[0].starts_with("shard1: "));
        assert_eq!(r.cross_shard_traces, 0, "one shard is not cross-shard");
    }

    #[test]
    fn orphan_abort_spans_are_counted_not_flagged() {
        let mut orphan = traced(SpanKind::CoordAbort, 4, None, 100, SpanOutcome::Deduped);
        orphan.note = Some("orphan-abort rx".into());
        let coord = vec![
            orphan,
            traced(SpanKind::CoordPrepare, 5, None, 200, SpanOutcome::Ok),
            traced(SpanKind::CoordCommit, 5, None, 300, SpanOutcome::Ok),
        ];
        let r = audit_cluster_lifecycles(&coord, &[]);
        assert!(r.ok(), "{:?}", r.all_violations());
        assert_eq!(r.orphan_aborts, 1);
    }

    #[test]
    fn deduped_grants_are_ignored() {
        let spans = vec![
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 1, 200, SpanOutcome::Ok),
            // A late retry answered from the dedup index after release.
            span(SpanKind::PmGrant, 1, 300, SpanOutcome::Deduped),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.ok(), "{:?}", r.violations);
    }
}
