//! Trace-replay lifecycle auditor.
//!
//! Reconstructs each promise's lifecycle from the span ring —
//! requested→granted→checked→released/expired — and asserts it against
//! ground truth derived from the promise journal. The auditor is
//! deliberately conservative about the ring's bounded retention: a
//! missing *older* span (overwritten) is never a violation; only spans
//! that are present and contradict each other or the journal are.
//!
//! The telemetry crate sits below `promises-core`, so the journal is
//! passed in pre-digested as [`JournalFacts`] (which promise ids were
//! granted / released / expired) rather than as journal entries.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::span::{SpanKind, SpanOutcome, SpanRecord};

/// Journal-derived ground truth: which promise ids the journal records as
/// granted, released, and expired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalFacts {
    /// Ids with a Grant record.
    pub granted: BTreeSet<u64>,
    /// Ids with a Release record.
    pub released: BTreeSet<u64>,
    /// Ids with an Expire record.
    pub expired: BTreeSet<u64>,
}

/// Result of auditing one run's spans against the journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleReport {
    /// Distinct promise ids observed in spans.
    pub promises: usize,
    /// Promises whose spans show both a grant and a terminal event.
    pub complete: usize,
    /// Ordering or journal-consistency violations, human-readable.
    pub violations: Vec<String>,
}

impl LifecycleReport {
    /// True when no lifecycle violated ordering or journal consistency.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Default)]
struct Lifecycle {
    grant: Option<SpanRecord>,
    checks: Vec<SpanRecord>,
    releases: Vec<SpanRecord>,
    expires: Vec<SpanRecord>,
}

/// Audits `spans` against `journal`. See the module docs for the rules.
pub fn audit_lifecycles(spans: &[SpanRecord], journal: &JournalFacts) -> LifecycleReport {
    let mut by_promise: BTreeMap<u64, Lifecycle> = BTreeMap::new();
    for s in spans {
        let Some(id) = s.promise else { continue };
        let life = by_promise.entry(id).or_default();
        match (s.kind, s.outcome) {
            // A deduped grant re-observes an earlier grant (possibly after
            // arbitrary delay) and carries no fresh lifecycle information.
            (SpanKind::PmGrant, SpanOutcome::Deduped) => {}
            (SpanKind::PmGrant, SpanOutcome::Ok) if life.grant.is_none() => {
                life.grant = Some(s.clone());
            }
            (SpanKind::PmCheck, _) => life.checks.push(s.clone()),
            (SpanKind::PmRelease, SpanOutcome::Ok) => life.releases.push(s.clone()),
            (SpanKind::PmExpire, SpanOutcome::Ok) => life.expires.push(s.clone()),
            _ => {}
        }
    }

    let mut report = LifecycleReport {
        promises: by_promise.len(),
        ..LifecycleReport::default()
    };

    for (id, life) in &by_promise {
        let terminal_end = life
            .releases
            .iter()
            .chain(life.expires.iter())
            .map(|s| s.end_ns())
            .min();
        if life.grant.is_some() && terminal_end.is_some() {
            report.complete += 1;
        }

        if let Some(grant) = &life.grant {
            // granted must precede every later lifecycle event.
            for (what, events) in [
                ("checked", &life.checks),
                ("released", &life.releases),
                ("expired", &life.expires),
            ] {
                for e in events.iter() {
                    if e.end_ns() < grant.start_ns {
                        report.violations.push(format!(
                            "promise {id}: {what} at {}ns before granted at {}ns",
                            e.end_ns(),
                            grant.start_ns
                        ));
                    }
                }
            }
            // A grant span must be backed by a journal Grant record.
            if !journal.granted.is_empty() && !journal.granted.contains(id) {
                report.violations.push(format!(
                    "promise {id}: grant span has no journal Grant record"
                ));
            }
        }

        // At most one terminal state: released and expired are exclusive.
        if !life.releases.is_empty() && !life.expires.is_empty() {
            report
                .violations
                .push(format!("promise {id}: both released and expired"));
        }
        if life.releases.len() > 1 {
            report.violations.push(format!(
                "promise {id}: released {} times",
                life.releases.len()
            ));
        }

        // No successful check may start after the terminal event ended.
        if let Some(term) = terminal_end {
            for c in life.checks.iter().filter(|c| c.outcome == SpanOutcome::Ok) {
                if c.start_ns > term {
                    report.violations.push(format!(
                        "promise {id}: checked at {}ns after terminal at {term}ns",
                        c.start_ns
                    ));
                }
            }
        }

        // Terminal spans must be backed by the matching journal record.
        for s in &life.releases {
            if !journal.released.contains(id) {
                report.violations.push(format!(
                    "promise {id}: release span ({}) has no journal Release record",
                    s.kind.as_str()
                ));
            }
        }
        for s in &life.expires {
            if !journal.expired.contains(id) {
                report.violations.push(format!(
                    "promise {id}: expire span ({}) has no journal Expire record",
                    s.kind.as_str()
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};

    fn span(kind: SpanKind, promise: u64, start_ns: u64, outcome: SpanOutcome) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            span: SpanId(start_ns),
            parent: None,
            kind,
            start_ns,
            dur_ns: 10,
            promise: Some(promise),
            outcome,
            fault: None,
            note: None,
        }
    }

    fn journal(granted: &[u64], released: &[u64], expired: &[u64]) -> JournalFacts {
        JournalFacts {
            granted: granted.iter().copied().collect(),
            released: released.iter().copied().collect(),
            expired: expired.iter().copied().collect(),
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let spans = vec![
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
            span(SpanKind::PmCheck, 1, 200, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 1, 300, SpanOutcome::Ok),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.promises, 1);
        assert_eq!(r.complete, 1);
    }

    #[test]
    fn release_before_grant_is_a_violation() {
        let spans = vec![
            span(SpanKind::PmRelease, 1, 50, SpanOutcome::Ok),
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(!r.ok());
        assert!(r.violations[0].contains("before granted"));
    }

    #[test]
    fn double_terminal_is_a_violation() {
        let spans = vec![
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 1, 200, SpanOutcome::Ok),
            span(SpanKind::PmExpire, 1, 300, SpanOutcome::Ok),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[1]));
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("both released and expired")));
    }

    #[test]
    fn span_without_journal_backing_is_a_violation() {
        let spans = vec![
            span(SpanKind::PmGrant, 2, 100, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 2, 200, SpanOutcome::Ok),
        ];
        // Journal knows promise 1 only.
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.violations.iter().any(|v| v.contains("no journal Grant")));
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("no journal Release")));
    }

    #[test]
    fn overwritten_grant_span_is_not_a_violation() {
        // The ring dropped the grant span; only the release survives, and
        // the journal confirms it. Bounded retention must not false-alarm.
        let spans = vec![span(SpanKind::PmRelease, 1, 200, SpanOutcome::Ok)];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.complete, 0);
    }

    #[test]
    fn deduped_grants_are_ignored() {
        let spans = vec![
            span(SpanKind::PmGrant, 1, 100, SpanOutcome::Ok),
            span(SpanKind::PmRelease, 1, 200, SpanOutcome::Ok),
            // A late retry answered from the dedup index after release.
            span(SpanKind::PmGrant, 1, 300, SpanOutcome::Deduped),
        ];
        let r = audit_lifecycles(&spans, &journal(&[1], &[1], &[]));
        assert!(r.ok(), "{:?}", r.violations);
    }
}
