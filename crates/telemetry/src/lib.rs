//! Observability for the Promises stack (DESIGN.md §12).
//!
//! The paper's grant-or-reject-immediately claim is an argument about
//! *where time and refusals go*; this crate makes that observable without
//! perturbing what it observes:
//!
//! - **Causal tracing** ([`TraceId`]/[`SpanId`], [`SpanRecord`],
//!   [`SpanRing`]): a trace is minted at the client, carried in the wire
//!   envelope, re-spanned on every retry, and joined ambiently
//!   ([`push_trace`]) by the promise manager and resource manager.
//! - **Histograms** ([`Histogram`]): fixed-bucket log2-scale latency
//!   distributions reporting p50/p95/p99/max, recorded with a few relaxed
//!   atomics.
//! - **The registry** ([`Telemetry`]): named histograms, typed counters,
//!   and the span ring behind one handle; components hold
//!   `Option<Arc<Telemetry>>` so the disabled path is a `None` check.
//! - **Exporters** ([`export::to_json`], [`export::to_prometheus`]) over
//!   immutable [`TelemetrySnapshot`]s.
//! - **Lifecycle audit** ([`audit_lifecycles`]): replays the span ring
//!   into per-promise lifecycles and asserts
//!   requested→granted→checked→terminal ordering against journal facts.

#![warn(missing_docs)]

pub mod audit;
pub mod export;
pub mod health;
pub mod hist;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod span;

pub use audit::{
    audit_cluster_lifecycles, audit_lifecycles, ClusterLifecycleReport, JournalFacts,
    LifecycleReport, ShardEvidence,
};
pub use health::{
    BurnRateConfig, BurnRateMonitor, BurnStatus, HealthObservation, HealthState, LeaseHealth,
    ReplHealth, Watchdog, WatchdogConfig, WatchdogTrip,
};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{FlightRecorder, HealthEvent, IncidentReport, DEFAULT_EVENT_CAPACITY};
pub use registry::{SpanDraft, Telemetry, TelemetrySnapshot, DEFAULT_RING_CAPACITY};
pub use ring::SpanRing;
pub use span::{
    current_trace, push_trace, FaultTag, SpanId, SpanKind, SpanOutcome, SpanRecord, TraceContext,
    TraceGuard, TraceId,
};
