//! Property tests for the two-window SLO burn-rate monitor (DESIGN §17).
//!
//! Two provable guarantees, each exercised over arbitrary workload
//! shapes:
//!
//! 1. **No false positives**: a workload whose every observation batch
//!    keeps its over-SLO fraction at or under the error budget can never
//!    trip the monitor — any window's aggregate fraction is a weighted
//!    average of per-batch fractions, so its burn stays ≤ 1, strictly
//!    under both thresholds (which the config requires to exceed 1).
//! 2. **Bounded detection latency**: starting from empty history, a
//!    workload whose every batch burns at `fast_burn` × budget or worse
//!    trips within `fast_window` observations (in fact on the first,
//!    since both windows then contain only violating batches).

use proptest::prelude::*;

use promises_telemetry::{BurnRateConfig, BurnRateMonitor, Histogram};

/// Builds the cumulative histogram stream: each batch appends `under`
/// samples below the SLO and `over` samples above it, then observes.
fn feed(mon: &mut BurnRateMonitor, hist: &Histogram, under: u64, over: u64) -> bool {
    let slo = mon.effective_slo_ns();
    for _ in 0..under {
        hist.record(slo / 2);
    }
    for _ in 0..over {
        hist.record(slo.saturating_mul(4));
    }
    mon.observe(Some(&hist.snapshot())).tripped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Property 1: batches within budget never trip, whatever their
    /// sizes, count, or how the in-budget violations are distributed.
    #[test]
    fn never_trips_when_every_batch_is_within_budget(
        batch_sizes in proptest::collection::vec(1u64..2_000, 1..40),
        seedish in any::<u64>(),
    ) {
        let cfg = BurnRateConfig::default(); // budget 1%, thresholds 4x/2x
        let mut mon = BurnRateMonitor::new(cfg);
        let hist = Histogram::new();
        for (i, &n) in batch_sizes.iter().enumerate() {
            // Up to budget * n violations per batch (floor keeps the
            // batch fraction <= budget exactly).
            let max_over = (n as f64 * cfg.budget).floor() as u64;
            let over = if max_over == 0 { 0 } else { (seedish >> (i % 32)) % (max_over + 1) };
            let tripped = feed(&mut mon, &hist, n - over, over);
            prop_assert!(
                !tripped,
                "tripped on in-budget batch {i} (n={n}, over={over})"
            );
        }
    }

    /// Property 2: sustained violation trips within the fast window when
    /// every batch's over-SLO fraction reaches fast_burn * budget.
    #[test]
    fn trips_within_fast_window_under_sustained_violation(
        batch_sizes in proptest::collection::vec(1u64..2_000, 1..10),
        fast_window in 1usize..5,
    ) {
        let cfg = BurnRateConfig {
            fast_window,
            slow_window: fast_window.max(3) * 4,
            ..BurnRateConfig::default()
        };
        let mut mon = BurnRateMonitor::new(cfg);
        let hist = Histogram::new();
        let mut tripped_at = None;
        for (i, &n) in batch_sizes.iter().enumerate() {
            // ceil(fast_burn * budget * n) violations: the batch fraction
            // is >= fast_burn * budget, i.e. burns at or above the fast
            // threshold (and a fortiori the slow one).
            let over = ((n as f64) * cfg.budget * cfg.fast_burn).ceil() as u64;
            let over = over.clamp(1, n);
            if feed(&mut mon, &hist, n - over, over) {
                tripped_at = Some(i);
                break;
            }
        }
        let at = tripped_at.expect("sustained violation must trip");
        prop_assert!(
            at < cfg.fast_window,
            "tripped at observation {at}, after the fast window ({})",
            cfg.fast_window
        );
    }
}
