//! Property tests: histogram bucket boundaries and quantile sanity.

use proptest::prelude::*;

use promises_telemetry::{bucket_bounds, bucket_index, Histogram, BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any recorded value falls inside the bounds of the bucket it is
    /// reported in.
    #[test]
    fn recorded_value_falls_in_its_reported_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        let v_eff = v.max(1); // 0 is absorbed by bucket 0 alongside 1.
        prop_assert!(
            v_eff >= lo && (v_eff < hi || hi == u64::MAX),
            "value {v} mapped to bucket {i} [{lo}, {hi})"
        );
    }

    /// Recording into a histogram puts the value in exactly one bucket and
    /// the snapshot totals stay consistent.
    #[test]
    fn snapshot_totals_match_bucket_contents(
        values in proptest::collection::vec(any::<u64>(), 1..64)
    ) {
        let h = Histogram::new();
        let mut sum = 0u64;
        let mut max = 0u64;
        for &v in &values {
            h.record(v);
            sum = sum.wrapping_add(v);
            max = max.max(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(s.max, max);
        prop_assert_eq!(s.sum, sum); // u64 wrapping matches atomic adds
        for &v in &values {
            prop_assert!(s.buckets[bucket_index(v)] > 0);
        }
    }

    /// Quantiles are monotone in q, never exceed the observed max, and the
    /// quantile estimate lands in an occupied bucket's range.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1u64..u64::MAX / 2, 1..64)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50().unwrap();
        let p95 = s.p95().unwrap();
        let p99 = s.p99().unwrap();
        prop_assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        prop_assert!(p99 <= s.max);
        // The p99 estimate sits in (or below the clamp of) the highest
        // occupied bucket.
        let top = (0..BUCKETS).rev().find(|&i| s.buckets[i] > 0).unwrap();
        let (_, hi) = bucket_bounds(top);
        prop_assert!(p99 < hi || hi == u64::MAX);
    }
}
