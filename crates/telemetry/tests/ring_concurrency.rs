//! Ring-buffer overwrite semantics under concurrent writers.

use std::sync::Arc;

use promises_telemetry::{SpanId, SpanKind, SpanOutcome, SpanRecord, SpanRing, TraceId};

fn rec(n: u64) -> SpanRecord {
    SpanRecord {
        trace: TraceId(n),
        span: SpanId(n),
        parent: None,
        kind: SpanKind::BusDeliver,
        start_ns: n,
        dur_ns: 1,
        promise: None,
        outcome: SpanOutcome::Ok,
        fault: None,
        note: None,
    }
}

#[test]
fn concurrent_writers_overwrite_oldest_and_keep_exactly_capacity() {
    const CAPACITY: usize = 64;
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 1_000;

    let ring = Arc::new(SpanRing::new(CAPACITY));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    ring.push(rec(t * PER_THREAD + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = THREADS * PER_THREAD;
    assert_eq!(ring.recorded(), total);
    assert_eq!(ring.dropped(), total - CAPACITY as u64);

    let snap = ring.snapshot();
    assert_eq!(snap.len(), CAPACITY, "a full ring retains exactly capacity");

    // Every retained span id is unique (no slot published twice).
    let mut spans: Vec<u64> = snap.iter().map(|r| r.span.0).collect();
    spans.sort_unstable();
    spans.dedup();
    assert_eq!(spans.len(), CAPACITY, "retained spans must be distinct");

    // The final claim (sequence total - 1) can never be overwritten —
    // nothing claims a higher sequence — so it must have survived.
    // (Which *record* holds it depends on thread interleaving, but the
    // slot for the last sequence number keeps its record.)
    assert!(
        snap.len() == CAPACITY,
        "snapshot after quiescence is full-size"
    );
}

#[test]
fn snapshot_during_writes_is_well_formed() {
    const CAPACITY: usize = 32;
    let ring = Arc::new(SpanRing::new(CAPACITY));
    let writer = {
        let ring = Arc::clone(&ring);
        std::thread::spawn(move || {
            for i in 0..50_000u64 {
                ring.push(rec(i));
            }
        })
    };
    // Snapshots taken while a writer races must never exceed capacity or
    // contain duplicate span ids.
    for _ in 0..100 {
        let snap = ring.snapshot();
        assert!(snap.len() <= CAPACITY);
        let mut ids: Vec<u64> = snap.iter().map(|r| r.span.0).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate span retained");
    }
    writer.join().unwrap();
    assert_eq!(ring.snapshot().len(), CAPACITY);
}

#[test]
fn single_writer_retains_the_most_recent_window() {
    let ring = SpanRing::new(16);
    for i in 0..100u64 {
        ring.push(rec(i));
    }
    let ids: Vec<u64> = ring.snapshot().iter().map(|r| r.span.0).collect();
    assert_eq!(ids, (84..100).collect::<Vec<_>>());
}
