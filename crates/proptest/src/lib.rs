//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without network access, so property tests link
//! against this in-repo shim instead of the real proptest. It keeps the
//! same source-level API the workspace uses — `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy` with `prop_map` / `prop_recursive` /
//! `boxed`, `any::<T>()`, integer-range and string-pattern strategies,
//! `collection::vec`, `option::of`, `Just` — but is **generation-only**:
//! a failing case panics with its inputs printed; there is no shrinking,
//! no persistence of failing seeds, and the regex subset for string
//! strategies is only what the tests here need (see [`string`]).
//!
//! Generation is deterministic per test (seeded from the test's module
//! path); set `PROPTEST_SEED=<u64>` to perturb all streams.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test that generates `config.cases` input tuples and runs the
/// body on each; `prop_assert*!` failures (and `?` on [`TestCaseError`])
/// panic with the offending inputs. `#![proptest_config(expr)]` at the top
/// of the block overrides the default configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg,
                            ));
                        )+
                        s
                    };
                    let case_fn = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    match case_fn() {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err(e) => panic!(
                            "proptest case {} of {} failed: {}\ninputs:\n{}",
                            case + 1, config.cases, e, inputs,
                        ),
                    }
                }
            }
        )*
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Like `assert!` but fails the current case (with input reporting)
/// instead of panicking directly. Only valid inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!` but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            left, right, format!($($fmt)+),
        );
    }};
}

/// Like `assert_ne!` but fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}\n {}",
            left, format!($($fmt)+),
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (-5i64..5).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_in_bounds(x in 3u8..9, y in -2i64..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y), "y was {}", y);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u8..10).prop_map(|n| n as i64),
                Just(-1i64),
                any::<bool>().prop_map(|b| if b { 100 } else { 200 }),
            ],
        ) {
            prop_assert!((0..10).contains(&v) || v == -1 || v == 100 || v == 200);
        }

        #[test]
        fn recursion_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 4, "depth {} tree {:?}", depth(&t), t);
        }

        #[test]
        fn question_mark_propagates_failure(x in 0u8..10) {
            let checked: Result<u8, TestCaseError> = Ok(x);
            let val = checked?;
            prop_assert_eq!(val, x);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 5usize);
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        always_fails();
    }
}
