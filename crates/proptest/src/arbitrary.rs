//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// The canonical strategy for `A` over its whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
