//! The `Strategy` trait and core combinators.
//!
//! Unlike real proptest there is no shrinking: a strategy is simply a
//! recipe for generating one random value, and combinators compose those
//! recipes. `BoxedStrategy` is `Rc`-backed so recursive strategies can be
//! cloned into several `prop_oneof!` arms cheaply.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// inner (smaller) cases and returns the composite case. The shim
    /// expands the recursion eagerly `depth` times over the base, so
    /// generated values nest at most `depth` levels before bottoming out
    /// at `self`. The size/branch hints are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }

    /// Type-erases this strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks uniformly among its arms; built by the `prop_oneof!` macro.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given (non-empty) arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                ((self.start as i128) + offset) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128) + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                ((start as i128) + offset) as $ty
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// String-literal patterns act as strategies over the regex subset
/// documented in [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}
