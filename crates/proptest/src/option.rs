//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`; `None` with probability 1/4, matching
/// real proptest's default weighting.
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some` values from `inner` three times out of four.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
