//! Runner configuration, failure type, and the deterministic RNG that
//! drives value generation.

use std::fmt;

/// Deterministic SplitMix64 RNG used for all value generation. Seeded
/// from the test's module path so each test gets a stable, independent
/// stream; set `PROPTEST_SEED=<u64>` to perturb every stream at once.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG whose stream is fully determined by `name` (and the
    /// optional `PROPTEST_SEED` environment variable).
    pub fn deterministic(name: &str) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        let mut state = h.finish() ^ 0x9E37_79B9_7F4A_7C15;
        if let Some(extra) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            state ^= extra;
        }
        Self { state }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, bound)`; panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is empty");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was falsified; the case counts as a test failure.
    Fail(String),
    /// The input was rejected (e.g. a precondition filter); the case is
    /// skipped without failing the test.
    Reject(String),
}

impl TestCaseError {
    /// A falsified property with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A rejected (skipped) input with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(msg) => write!(f, "{msg}"),
            Self::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}
