//! Generation from a small regex subset, backing `&str` strategies.
//!
//! Supported syntax — exactly what this workspace's tests use:
//!
//! * literal characters;
//! * character classes `[...]` with single chars and `a-z` ranges (a `-`
//!   that is first, last, or not between two chars is literal);
//! * counted repetition `{n}` / `{m,n}` applied to the preceding atom.
//!
//! Anything else (`(`, `|`, `*`, `+`, `?`, `.`, `\`) panics loudly rather
//! than silently generating the wrong language.

use crate::test_runner::TestRng;

/// One unit of the pattern plus its repetition bounds (inclusive).
struct Atom {
    /// Inclusive char ranges to choose from; a literal is one (c, c) range.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Generates a random string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..count {
            out.push(sample_char(&atom.ranges, rng));
        }
    }
    out
}

fn sample_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: usize = ranges
        .iter()
        .map(|&(lo, hi)| hi as usize - lo as usize + 1)
        .sum();
    let mut idx = rng.below(total);
    for &(lo, hi) in ranges {
        let len = hi as usize - lo as usize + 1;
        if idx < len {
            return char::from_u32(lo as u32 + idx as u32).expect("range within valid chars");
        }
        idx -= len;
    }
    unreachable!("index within total")
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            c @ ('(' | '|' | '*' | '+' | '?' | '.' | '\\' | ']' | '}') => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
    assert!(!body.is_empty(), "empty [] class in pattern {pattern:?}");
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            assert!(
                body[i] <= body[i + 2],
                "inverted range in class in pattern {pattern:?}"
            );
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    ranges
}

/// Parses a `{n}` / `{m,n}` quantifier at `chars[*i]`, if present,
/// advancing `*i` past it. Defaults to exactly one.
fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    if *i >= chars.len() || chars[*i] != '{' {
        return (1, 1);
    }
    let close = chars[*i + 1..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| p + *i + 1)
        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
    let body: String = chars[*i + 1..close].iter().collect();
    *i = close + 1;
    let parse_n = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((lo, hi)) => {
            let (lo, hi) = (parse_n(lo), parse_n(hi));
            assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
            (lo, hi)
        }
        None => {
            let n = parse_n(&body);
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-shim-tests")
    }

    #[test]
    fn class_with_ranges_and_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9 ]{0,8}", &mut r);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(s.len() <= 9, "{s:?}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '),
                "{s:?}"
            );
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut r = rng();
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = generate_from_pattern("[a-zA-Z0-9 <>&'\"=_-]{0,24}", &mut r);
            assert!(s.len() <= 24);
            saw_dash |= s.contains('-');
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || " <>&'\"=_-".contains(c)),
                "{s:?}"
            );
        }
        assert!(saw_dash, "dash should be generated as a literal");
    }

    #[test]
    fn exact_quantifier_and_literals() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_from_pattern("c[0-9]{3}x", &mut r);
            assert_eq!(s.len(), 5, "{s:?}");
            assert!(s.starts_with('c') && s.ends_with('x'), "{s:?}");
            assert!(s[1..4].chars().all(|c| c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_metachar_panics() {
        generate_from_pattern("a|b", &mut rng());
    }
}
