//! Seeded, deterministic fault injection for the Promises workspace.
//!
//! The paper's guarantees (§3 expiry, §4 atomicity of grant and of
//! action+release) are only interesting in the presence of failures, so this
//! crate makes failures first-class and *reproducible*: a [`FaultScenario`]
//! describes per-fault-kind probabilities and a seed; a [`FaultInjector`]
//! draws from one deterministic PRNG stream so an entire failure run can be
//! replayed bit-for-bit from the scenario alone.
//!
//! Injection points:
//! - **Wire** — the in-memory bus consults [`FaultInjector::request_fate`]
//!   before delivering a request and [`FaultInjector::reply_fate`] before
//!   returning the reply, and applies [`FaultInjector::delay`] to each
//!   direction. Dropping the *request* means the service never ran; dropping
//!   the *reply* means it may have — the distinction drives the retry policy.
//! - **RM storage** — [`FaultInjector::storage_fault`] is installed as the
//!   resource manager's storage-fault hook and turns a configurable fraction
//!   of page accesses into typed `RmError::StorageFault` errors.
//! - **Named points** — [`FaultInjector::pause`] and
//!   [`FaultInjector::point_error`] fire at named injection points (for
//!   example `"undo"` inside rollback, or PM pause points), controlled per
//!   point by [`FaultScenario::points`] so dangerous faults stay off unless a
//!   test opts in.
//!
//! All counters are recorded in [`FaultStats`] so experiments can report how
//! many faults actually fired.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use promises_rm::RmError;

/// What the injector decided to do with one message direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver the message normally.
    Deliver,
    /// Drop the message (the receiver never sees it).
    Drop,
    /// Deliver the message twice (the receiver handles it twice; the
    /// caller sees the first reply).
    Duplicate,
}

/// Per-named-point fault settings (used for PM pauses and the rollback
/// `"undo"` point).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PointFaults {
    /// Probability in [0, 1] that hitting the point injects a pause.
    pub pause_probability: f64,
    /// Length of an injected pause.
    pub pause: Duration,
    /// Probability in [0, 1] that hitting the point injects a storage
    /// fault (an `RmError::StorageFault` naming the point).
    pub error_probability: f64,
}

/// A reproducible description of which faults to inject at which rates.
///
/// Two runs with equal scenarios observe the same fault sequence as long as
/// they interrogate the injector in the same order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// PRNG seed; the whole fault sequence is a pure function of this.
    pub seed: u64,
    /// Probability in [0, 1] that an outbound request is dropped before the
    /// service sees it (safe to retry: the action never ran).
    pub drop_request: f64,
    /// Probability in [0, 1] that a reply is dropped after the service ran
    /// (ambiguous to the caller: the action may have been applied).
    pub drop_reply: f64,
    /// Probability in [0, 1] that a request is delivered twice.
    pub duplicate: f64,
    /// Probability in [0, 1] that a per-direction delay is injected.
    pub delay_probability: f64,
    /// Maximum injected delay; the actual delay is uniform in
    /// [0, `max_delay`]. Delays also reorder concurrent messages.
    pub max_delay: Duration,
    /// Probability in [0, 1] that an RM storage access fails with
    /// `RmError::StorageFault`.
    pub storage_error: f64,
    /// Per-named-point overrides (pauses and point errors). Points that are
    /// absent never fire, so e.g. the `"undo"` point is off by default.
    pub points: BTreeMap<String, PointFaults>,
}

impl FaultScenario {
    /// A scenario with no faults at all (but still seeded).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            drop_request: 0.0,
            drop_reply: 0.0,
            duplicate: 0.0,
            delay_probability: 0.0,
            max_delay: Duration::ZERO,
            storage_error: 0.0,
            points: BTreeMap::new(),
        }
    }

    /// A uniform message-fault scenario: requests and replies each dropped
    /// with probability `rate`, requests duplicated with probability `rate`,
    /// and sub-millisecond delays at the same rate.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            drop_request: rate,
            drop_reply: rate,
            duplicate: rate,
            delay_probability: rate,
            max_delay: Duration::from_micros(200),
            storage_error: 0.0,
            points: BTreeMap::new(),
        }
    }

    /// Adds RM storage faults at the given rate.
    pub fn with_storage_errors(mut self, rate: f64) -> Self {
        self.storage_error = rate;
        self
    }

    /// Adds a named injection point with the given settings.
    pub fn with_point(mut self, name: &str, faults: PointFaults) -> Self {
        self.points.insert(name.to_owned(), faults);
        self
    }

    /// Arms the replication fault points: shipped journal segments are
    /// dropped in flight with probability `drop`, and acked shipments are
    /// delayed (follower lag) with probability `lag`. Both points are
    /// consumed via [`FaultInjector::point_fires`] by the cluster's
    /// replication links; a dropped shipment is retried by the link, so
    /// these rates degrade freshness, never correctness.
    pub fn with_replication_faults(mut self, drop: f64, lag: f64) -> Self {
        self.points.insert(
            POINT_REPL_DROP.to_owned(),
            PointFaults {
                error_probability: drop,
                ..PointFaults::default()
            },
        );
        self.points.insert(
            POINT_REPL_LAG.to_owned(),
            PointFaults {
                error_probability: lag,
                ..PointFaults::default()
            },
        );
        self
    }
}

/// Named point: a shipped replication segment is dropped before the
/// follower sees it (the link retries).
pub const POINT_REPL_DROP: &str = "repl-drop";
/// Named point: a shipment is applied but the ack is delayed, leaving the
/// follower's reported watermark stale for a beat.
pub const POINT_REPL_LAG: &str = "repl-lag";
/// Named point: the fail-over sweep consults this to decide whether to
/// kill a shard leader at the next kill site.
pub const POINT_LEADER_KILL: &str = "leader-kill";

/// Counters for faults that actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests dropped before the service ran.
    pub requests_dropped: u64,
    /// Replies dropped after the service ran.
    pub replies_dropped: u64,
    /// Requests delivered twice.
    pub duplicates: u64,
    /// Per-direction delays injected.
    pub delays: u64,
    /// RM storage faults injected.
    pub storage_faults: u64,
    /// Pauses injected at named points.
    pub pauses: u64,
    /// Errors injected at named points.
    pub point_errors: u64,
}

/// SplitMix64: tiny, high-quality, deterministic. One stream per injector so
/// the fault sequence is a pure function of the scenario seed and the order
/// of interrogations.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct InjectorState {
    rng: SplitMix64,
    stats: FaultStats,
}

/// A deterministic fault injector driven by a [`FaultScenario`].
///
/// Thread-safe: concurrent users share one PRNG stream under a mutex, so a
/// single-threaded run is exactly reproducible and a multi-threaded run is
/// reproducible up to thread interleaving (each *decision* is still drawn
/// from the seeded stream).
pub struct FaultInjector {
    scenario: FaultScenario,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Creates an injector for the scenario.
    pub fn new(scenario: FaultScenario) -> Self {
        let seed = scenario.seed;
        Self {
            scenario,
            state: Mutex::new(InjectorState {
                rng: SplitMix64(seed),
                stats: FaultStats::default(),
            }),
        }
    }

    /// The scenario this injector was built from.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Counters of faults that fired so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().unwrap().stats
    }

    /// Resets the PRNG to the scenario seed and zeroes the counters, so the
    /// same injector can replay an identical fault sequence.
    pub fn reset(&self) {
        let mut st = self.state.lock().unwrap();
        st.rng = SplitMix64(self.scenario.seed);
        st.stats = FaultStats::default();
    }

    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.state.lock().unwrap().rng.next_f64() < p
    }

    /// Decides the fate of an outbound request (drop beats duplicate).
    pub fn request_fate(&self) -> MessageFate {
        if self.roll(self.scenario.drop_request) {
            self.state.lock().unwrap().stats.requests_dropped += 1;
            return MessageFate::Drop;
        }
        if self.roll(self.scenario.duplicate) {
            self.state.lock().unwrap().stats.duplicates += 1;
            return MessageFate::Duplicate;
        }
        MessageFate::Deliver
    }

    /// Decides the fate of a reply (replies are never duplicated: the caller
    /// consumes exactly one reply per send).
    pub fn reply_fate(&self) -> MessageFate {
        if self.roll(self.scenario.drop_reply) {
            self.state.lock().unwrap().stats.replies_dropped += 1;
            return MessageFate::Drop;
        }
        MessageFate::Deliver
    }

    /// Returns a delay to apply to one message direction, if any. Delays on
    /// concurrent sends reorder delivery relative to real time.
    pub fn delay(&self) -> Option<Duration> {
        if !self.roll(self.scenario.delay_probability) {
            return None;
        }
        let mut st = self.state.lock().unwrap();
        st.stats.delays += 1;
        let max = self.scenario.max_delay.as_nanos() as u64;
        if max == 0 {
            return None;
        }
        let nanos = st.rng.next_u64() % (max + 1);
        Some(Duration::from_nanos(nanos))
    }

    /// Storage-fault hook for the resource manager: returns the error to
    /// inject into an access of `table`, or `None` to let it through.
    pub fn storage_fault(&self, op: &str, table: &str) -> Option<RmError> {
        if !self.roll(self.scenario.storage_error) {
            return None;
        }
        self.state.lock().unwrap().stats.storage_faults += 1;
        Some(RmError::StorageFault {
            op: op.to_owned(),
            table: table.to_owned(),
        })
    }

    /// Fires the named pause point: returns the pause to apply, if any.
    /// Unknown points never fire.
    pub fn pause(&self, point: &str) -> Option<Duration> {
        let pf = self.scenario.points.get(point)?;
        if !self.roll(pf.pause_probability) {
            return None;
        }
        self.state.lock().unwrap().stats.pauses += 1;
        Some(pf.pause)
    }

    /// Builds the resource manager's storage-fault hook for this injector.
    ///
    /// Ordinary accesses draw from [`FaultInjector::storage_fault`];
    /// rollback replay (op `"undo"`) is routed to the named `"undo"` point
    /// instead, so undo writes stay fault-free unless a scenario opts in
    /// with [`FaultScenario::with_point`] — injecting there deliberately
    /// corrupts rollback (`RmError::RollbackIncomplete`) and is only for
    /// tests of that path.
    pub fn rm_hook(self: &std::sync::Arc<Self>) -> promises_rm::StorageFaultHook {
        let inj = std::sync::Arc::clone(self);
        std::sync::Arc::new(move |op: &str, table: &str| {
            if op == "undo" {
                inj.point_error("undo")
            } else {
                inj.storage_fault(op, table)
            }
        })
    }

    /// Fires the named error point: returns a storage fault naming the
    /// point, or `None`. Unknown points never fire — in particular the
    /// `"undo"` point (rollback writes) only fires when a scenario opts in.
    pub fn point_error(&self, point: &str) -> Option<RmError> {
        let pf = self.scenario.points.get(point)?;
        if !self.roll(pf.error_probability) {
            return None;
        }
        self.state.lock().unwrap().stats.point_errors += 1;
        Some(RmError::StorageFault {
            op: "injected".to_owned(),
            table: point.to_owned(),
        })
    }

    /// Boolean form of [`FaultInjector::point_error`] for faults that are
    /// events rather than storage errors (dropped replication shipments,
    /// lagged acks, leader kills). Draws from the same seeded stream and
    /// counts into `point_errors`, so replication scenarios stay exactly
    /// reproducible alongside message faults.
    pub fn point_fires(&self, point: &str) -> bool {
        let Some(pf) = self.scenario.points.get(point) else {
            return false;
        };
        if !self.roll(pf.error_probability) {
            return false;
        }
        self.state.lock().unwrap().stats.point_errors += 1;
        true
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("scenario", &self.scenario)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(injector: &FaultInjector, n: usize) -> Vec<MessageFate> {
        (0..n).map(|_| injector.request_fate()).collect()
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = FaultInjector::new(FaultScenario::uniform(7, 0.3));
        let b = FaultInjector::new(FaultScenario::uniform(7, 0.3));
        assert_eq!(fates(&a, 64), fates(&b, 64));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seed_different_sequence() {
        let a = FaultInjector::new(FaultScenario::uniform(1, 0.3));
        let b = FaultInjector::new(FaultScenario::uniform(2, 0.3));
        assert_ne!(fates(&a, 64), fates(&b, 64));
    }

    #[test]
    fn reset_replays_identically() {
        let inj = FaultInjector::new(FaultScenario::uniform(42, 0.25));
        let first = fates(&inj, 32);
        inj.reset();
        assert_eq!(fates(&inj, 32), first);
    }

    #[test]
    fn quiet_scenario_never_fires() {
        let inj = FaultInjector::new(FaultScenario::quiet(5));
        for _ in 0..100 {
            assert_eq!(inj.request_fate(), MessageFate::Deliver);
            assert_eq!(inj.reply_fate(), MessageFate::Deliver);
            assert!(inj.delay().is_none());
            assert!(inj.storage_fault("get", "t").is_none());
            assert!(inj.pause("anything").is_none());
            assert!(inj.point_error("undo").is_none());
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn storage_faults_are_typed() {
        let inj = FaultInjector::new(FaultScenario::quiet(9).with_storage_errors(1.0));
        match inj.storage_fault("put", "stock") {
            Some(RmError::StorageFault { op, table }) => {
                assert_eq!(op, "put");
                assert_eq!(table, "stock");
            }
            other => panic!("expected storage fault, got {other:?}"),
        }
        assert_eq!(inj.stats().storage_faults, 1);
    }

    #[test]
    fn points_only_fire_when_configured() {
        let inj = FaultInjector::new(FaultScenario::quiet(3).with_point(
            "undo",
            PointFaults {
                pause_probability: 0.0,
                pause: Duration::ZERO,
                error_probability: 1.0,
            },
        ));
        assert!(inj.point_error("undo").is_some());
        assert!(inj.point_error("other").is_none());
        let inj2 = FaultInjector::new(FaultScenario::quiet(3).with_point(
            "pm-grant",
            PointFaults {
                pause_probability: 1.0,
                pause: Duration::from_millis(1),
                error_probability: 0.0,
            },
        ));
        assert_eq!(inj2.pause("pm-grant"), Some(Duration::from_millis(1)));
        assert!(inj2.pause("undo").is_none());
    }

    #[test]
    fn replication_points_fire_at_configured_rates() {
        let inj = FaultInjector::new(FaultScenario::quiet(5).with_replication_faults(1.0, 0.0));
        assert!(inj.point_fires(POINT_REPL_DROP));
        assert!(!inj.point_fires(POINT_REPL_LAG));
        assert!(!inj.point_fires(POINT_LEADER_KILL), "unarmed point is off");
        assert_eq!(inj.stats().point_errors, 1);
        // Determinism: two injectors with the same seed agree draw-by-draw.
        let mk = || FaultInjector::new(FaultScenario::quiet(9).with_replication_faults(0.5, 0.5));
        let (a, b) = (mk(), mk());
        let draws = |i: &FaultInjector| {
            (0..64)
                .map(|k| {
                    i.point_fires(if k % 2 == 0 {
                        POINT_REPL_DROP
                    } else {
                        POINT_REPL_LAG
                    })
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(&a), draws(&b));
    }

    #[test]
    fn duplicates_and_drops_both_occur_at_high_rates() {
        let inj = FaultInjector::new(FaultScenario::uniform(11, 0.4));
        let fates = fates(&inj, 200);
        assert!(fates.contains(&MessageFate::Drop));
        assert!(fates.contains(&MessageFate::Duplicate));
        assert!(fates.contains(&MessageFate::Deliver));
        let stats = inj.stats();
        assert!(stats.requests_dropped > 0 && stats.duplicates > 0);
    }

    #[test]
    fn delay_is_bounded() {
        let inj = FaultInjector::new(FaultScenario {
            delay_probability: 1.0,
            max_delay: Duration::from_micros(50),
            ..FaultScenario::quiet(13)
        });
        for _ in 0..100 {
            let d = inj.delay().expect("always delayed");
            assert!(d <= Duration::from_micros(50));
        }
    }
}
