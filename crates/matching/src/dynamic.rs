//! Incremental matching: one augmenting-path search per new promise slot.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Outcome of removing a matched right vertex (a resource that was taken
/// or destroyed out from under the matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RightRemoval {
    /// The vertex was unmatched (or unknown); nothing else changed.
    Unmatched,
    /// Its left partner was re-matched to another acceptable resource
    /// (the paper's "tentative allocation" re-arrangement).
    Rematched,
    /// No alternative exists: the left partner is now unmatched, i.e. some
    /// promise can no longer be honoured. The caller must treat this as a
    /// (potential) promise violation.
    Infeasible,
}

/// An incrementally maintained bipartite matching between left vertices
/// ("promise slots") and right vertices ("available resource instances").
///
/// The core operation is [`DynamicMatching::try_add_left`]: it succeeds iff
/// an augmenting path exists from the new slot, re-arranging existing
/// tentative assignments along the way; on failure the structure is
/// unchanged, which is exactly the paper's grant-or-reject-immediately
/// semantics.
#[derive(Debug, Clone)]
pub struct DynamicMatching<L, R> {
    adjacency: HashMap<L, Vec<R>>,
    match_l: HashMap<L, R>,
    match_r: HashMap<R, L>,
    rights: HashSet<R>,
}

impl<L, R> Default for DynamicMatching<L, R> {
    fn default() -> Self {
        Self {
            adjacency: HashMap::new(),
            match_l: HashMap::new(),
            match_r: HashMap::new(),
            rights: HashSet::new(),
        }
    }
}

impl<L, R> DynamicMatching<L, R>
where
    L: Eq + Hash + Clone,
    R: Eq + Hash + Clone,
{
    /// Creates an empty matching.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a right vertex (an available resource instance).
    pub fn add_right(&mut self, r: R) {
        self.rights.insert(r);
    }

    /// True if `r` is registered.
    pub fn has_right(&self, r: &R) -> bool {
        self.rights.contains(r)
    }

    /// Directly pairs left vertex `l` with right vertex `r` without an
    /// augmenting-path search — the *stability* primitive: a slot that
    /// already holds a valid, unclaimed resource keeps it instead of being
    /// re-shuffled by insertion order. Returns `false` (changing nothing)
    /// if `l` already exists, `r` is unknown or already matched, or `r` is
    /// not in `neighbours`; the caller then falls back to
    /// [`DynamicMatching::try_add_left`].
    pub fn seed_pair(&mut self, l: L, neighbours: Vec<R>, r: R) -> bool {
        if self.adjacency.contains_key(&l) || !self.rights.contains(&r) {
            return false;
        }
        if self.match_r.contains_key(&r) {
            return false;
        }
        let usable: Vec<R> = neighbours
            .into_iter()
            .filter(|x| self.rights.contains(x))
            .collect();
        if !usable.contains(&r) {
            return false;
        }
        self.adjacency.insert(l.clone(), usable);
        self.match_l.insert(l.clone(), r.clone());
        self.match_r.insert(r, l);
        true
    }

    /// Attempts to add left vertex `l` whose acceptable resources are
    /// `neighbours`. Returns `true` (and commits the augmentation) iff the
    /// enlarged matching still matches every left vertex; otherwise leaves
    /// the structure exactly as it was and returns `false`.
    pub fn try_add_left(&mut self, l: L, neighbours: Vec<R>) -> bool {
        if self.adjacency.contains_key(&l) {
            return false;
        }
        let usable: Vec<R> = neighbours
            .into_iter()
            .filter(|r| self.rights.contains(r))
            .collect();
        self.adjacency.insert(l.clone(), usable);
        let mut visited = HashSet::new();
        if self.augment(&l, &mut visited) {
            true
        } else {
            self.adjacency.remove(&l);
            false
        }
    }

    /// Removes a left vertex (promise slot released or expired), freeing
    /// its matched resource if any.
    pub fn remove_left(&mut self, l: &L) {
        self.adjacency.remove(l);
        if let Some(r) = self.match_l.remove(l) {
            self.match_r.remove(&r);
        }
    }

    /// Removes a right vertex (resource taken/destroyed). If it was
    /// matched, tries to re-match its left partner elsewhere.
    pub fn remove_right(&mut self, r: &R) -> RightRemoval {
        if !self.rights.remove(r) {
            return RightRemoval::Unmatched;
        }
        // Drop r from every adjacency list so augmentation can't re-use it
        // — required even when r is currently unmatched, or a later
        // augmenting path could assign a slot to a removed resource.
        for adj in self.adjacency.values_mut() {
            adj.retain(|x| x != r);
        }
        let Some(l) = self.match_r.remove(r) else {
            return RightRemoval::Unmatched;
        };
        self.match_l.remove(&l);
        let mut visited = HashSet::new();
        if self.augment(&l, &mut visited) {
            RightRemoval::Rematched
        } else {
            self.adjacency.remove(&l);
            RightRemoval::Infeasible
        }
    }

    /// Current tentative assignment of a slot.
    pub fn assignment(&self, l: &L) -> Option<&R> {
        self.match_l.get(l)
    }

    /// The left slot tentatively holding resource `r`, if any.
    pub fn holder(&self, r: &R) -> Option<&L> {
        self.match_r.get(r)
    }

    /// Number of matched slots (equals number of live slots by invariant).
    pub fn len(&self) -> usize {
        self.match_l.len()
    }

    /// True if no slots are matched.
    pub fn is_empty(&self) -> bool {
        self.match_l.is_empty()
    }

    /// Number of registered right vertices.
    pub fn right_len(&self) -> usize {
        self.rights.len()
    }

    /// Verifies internal invariants; used by property tests.
    pub fn check_invariants(&self) -> bool {
        // Every left in adjacency is matched (we never keep unmatched lefts).
        if self.adjacency.len() != self.match_l.len() {
            return false;
        }
        for (l, r) in &self.match_l {
            if self.match_r.get(r) != Some(l) {
                return false;
            }
            if !self.rights.contains(r) {
                return false;
            }
            match self.adjacency.get(l) {
                Some(adj) if adj.contains(r) => {}
                _ => return false,
            }
        }
        true
    }

    fn augment(&mut self, l: &L, visited: &mut HashSet<R>) -> bool {
        let neighbours = match self.adjacency.get(l) {
            Some(n) => n.clone(),
            None => return false,
        };
        // Prefer a free resource before displacing a matched one: same
        // augmenting-path correctness, but existing assignments move only
        // when no free alternative exists (assignment *stability*).
        for r in &neighbours {
            if !visited.contains(r) && !self.match_r.contains_key(r) {
                visited.insert(r.clone());
                self.match_l.insert(l.clone(), r.clone());
                self.match_r.insert(r.clone(), l.clone());
                return true;
            }
        }
        for r in neighbours {
            if !visited.insert(r.clone()) {
                continue;
            }
            let Some(other) = self.match_r.get(&r).cloned() else {
                continue;
            };
            if self.augment(&other, visited) {
                self.match_l.insert(l.clone(), r.clone());
                self.match_r.insert(r, l.clone());
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(rights: &[&str]) -> DynamicMatching<String, String> {
        let mut m = DynamicMatching::new();
        for r in rights {
            m.add_right((*r).to_owned());
        }
        m
    }

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn hotel_rearrangement_from_the_paper() {
        // Section 5: "view" request tentatively takes room 512; a later
        // "5th floor" request can still be granted because 512 is handed to
        // it and the view request is re-assigned to another view room.
        let mut m = dm(&["512", "610"]); // 512: 5th floor + view; 610: view only
        assert!(m.try_add_left("want-view".into(), v(&["512", "610"])));
        // Tentative allocation may have picked 512 for the view request.
        assert!(m.try_add_left("want-5th".into(), v(&["512"])));
        assert_eq!(m.assignment(&"want-5th".into()), Some(&"512".to_owned()));
        assert_eq!(m.assignment(&"want-view".into()), Some(&"610".to_owned()));
        assert!(m.check_invariants());
    }

    #[test]
    fn infeasible_add_leaves_state_unchanged() {
        let mut m = dm(&["r1"]);
        assert!(m.try_add_left("a".into(), v(&["r1"])));
        let before_len = m.len();
        assert!(!m.try_add_left("b".into(), v(&["r1"])));
        assert_eq!(m.len(), before_len);
        assert_eq!(m.assignment(&"a".into()), Some(&"r1".to_owned()));
        assert!(m.check_invariants());
    }

    #[test]
    fn add_left_with_unknown_rights_filters_them() {
        let mut m = dm(&["r1"]);
        assert!(m.try_add_left("a".into(), v(&["ghost", "r1"])));
        assert_eq!(m.assignment(&"a".into()), Some(&"r1".to_owned()));
    }

    #[test]
    fn duplicate_left_rejected() {
        let mut m = dm(&["r1", "r2"]);
        assert!(m.try_add_left("a".into(), v(&["r1", "r2"])));
        assert!(!m.try_add_left("a".into(), v(&["r2"])));
    }

    #[test]
    fn remove_left_frees_resource() {
        let mut m = dm(&["r1"]);
        assert!(m.try_add_left("a".into(), v(&["r1"])));
        m.remove_left(&"a".into());
        assert!(m.is_empty());
        assert!(m.try_add_left("b".into(), v(&["r1"])));
        assert!(m.check_invariants());
    }

    #[test]
    fn remove_right_rematches_when_possible() {
        let mut m = dm(&["r1", "r2"]);
        assert!(m.try_add_left("a".into(), v(&["r1", "r2"])));
        let taken = m.assignment(&"a".into()).unwrap().clone();
        assert_eq!(m.remove_right(&taken), RightRemoval::Rematched);
        assert!(m.assignment(&"a".into()).is_some());
        assert!(m.check_invariants());
    }

    #[test]
    fn remove_right_reports_infeasible() {
        let mut m = dm(&["r1"]);
        assert!(m.try_add_left("a".into(), v(&["r1"])));
        assert_eq!(m.remove_right(&"r1".into()), RightRemoval::Infeasible);
        assert!(m.assignment(&"a".into()).is_none());
    }

    #[test]
    fn remove_unmatched_right_is_noop() {
        let mut m = dm(&["r1", "r2"]);
        assert!(m.try_add_left("a".into(), v(&["r1"])));
        // r2 may be unmatched (a only accepts r1).
        let free = if m.assignment(&"a".into()) == Some(&"r1".to_owned()) {
            "r2"
        } else {
            "r1"
        };
        assert_eq!(m.remove_right(&free.to_owned()), RightRemoval::Unmatched);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn chain_rearrangement() {
        // a: {r1}, b: {r1, r2}, c: {r2, r3} — adding in a,b,c order forces
        // cascading re-assignments.
        let mut m = dm(&["r1", "r2", "r3"]);
        assert!(m.try_add_left("b".into(), v(&["r1", "r2"])));
        assert!(m.try_add_left("c".into(), v(&["r2", "r3"])));
        assert!(m.try_add_left("a".into(), v(&["r1"])));
        assert_eq!(m.len(), 3);
        assert!(m.check_invariants());
        assert_eq!(m.assignment(&"a".into()), Some(&"r1".to_owned()));
    }
}
