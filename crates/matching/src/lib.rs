//! `promises-matching` — bipartite matching for promise satisfiability.
//!
//! Section 5 of the CIDR'07 Promises paper observes that when promises use
//! *property-based* resource views, deciding whether a set of promises can
//! all be honoured "might be done by finding a matching in a bipartite
//! graph where edges link the untaken resources to the promise predicates
//! that they can satisfy". Section 8 notes the authors' prototype did not
//! implement this; this crate does.
//!
//! Three entry points:
//!
//! * [`hopcroft_karp`] — batch maximum matching in `O(E sqrt(V))`, used to
//!   check a whole promise table from scratch;
//! * [`DynamicMatching`] — an incremental structure that adds one left
//!   vertex (one promised "slot") via a single augmenting-path search.
//!   Successfully finding an augmenting path *is* the paper's "tentative
//!   allocation with re-arrangement": already-promised resources are
//!   shuffled to other promises that also accept them so the new promise
//!   can be granted;
//! * [`assign_slots`] — the promise checker's entry point: given the
//!   pre-filtered allowed-instance lists of a set of slots, produce a
//!   full assignment of distinct instances (or report infeasibility).
//!   [`assign_slots_seeded`] is the *stable* variant: slots keep their
//!   current instances unless an augmenting path must move them, so
//!   re-checking never permutes existing holdings gratuitously.

mod dynamic;
mod hopcroft_karp;

pub use dynamic::{DynamicMatching, RightRemoval};
pub use hopcroft_karp::{hopcroft_karp, MatchingResult};

/// Assigns every slot a distinct right vertex drawn from its allowed
/// list, or returns `None` if no complete assignment exists.
///
/// `rights` enumerates the matchable right vertices; `allowed[i]` lists
/// the rights slot `i` accepts (each must appear in `rights`). Slots are
/// seeded most-constrained-first — a good heuristic for speed, while
/// feasibility itself is order-independent thanks to augmenting-path
/// re-arrangement. On success, `out[i]` is the right assigned to slot `i`.
pub fn assign_slots(
    rights: impl IntoIterator<Item = usize>,
    allowed: &[Vec<usize>],
) -> Option<Vec<usize>> {
    assign_slots_seeded(rights, allowed, &[])
}

/// Like [`assign_slots`], but *stable*: `seeds[i]` (when present) is the
/// right vertex slot `i` currently holds, and the assignment keeps every
/// valid seed in place unless an augmenting path genuinely needs to move
/// it. Feasibility is unchanged — a perfect matching extends any partial
/// matching of valid pairs via augmenting paths — but the result no longer
/// permutes existing holdings gratuitously, so a client that has observed
/// its allocation keeps seeing the same instance across unrelated grants.
///
/// `seeds` may be shorter than `allowed`; missing entries are unseeded.
/// A seed that is stale (not in `rights`, not in the slot's allowed list,
/// or claimed by an earlier seed) is ignored rather than an error.
pub fn assign_slots_seeded(
    rights: impl IntoIterator<Item = usize>,
    allowed: &[Vec<usize>],
    seeds: &[Option<usize>],
) -> Option<Vec<usize>> {
    let mut matching: DynamicMatching<usize, usize> = DynamicMatching::new();
    for r in rights {
        matching.add_right(r);
    }

    // Pass 1: keep current holdings. Direct pairing, no augmentation — a
    // seeded slot never displaces another seeded slot.
    let mut remaining: Vec<usize> = Vec::new();
    for (i, options) in allowed.iter().enumerate() {
        let seeded = match seeds.get(i).copied().flatten() {
            Some(s) => matching.seed_pair(i, options.clone(), s),
            None => false,
        };
        if !seeded {
            remaining.push(i);
        }
    }

    // Pass 2: place the rest most-constrained-first; augmenting paths move
    // seeded holdings only when no completion exists without doing so.
    remaining.sort_by_key(|&i| allowed[i].len());
    for &i in &remaining {
        if !matching.try_add_left(i, allowed[i].clone()) {
            return None;
        }
    }

    Some(
        (0..allowed.len())
            .map(|i| *matching.assignment(&i).expect("all slots matched above"))
            .collect(),
    )
}

/// A bipartite graph in adjacency-list form: `adj[l]` lists the right
/// vertices that left vertex `l` may be matched to.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    adj: Vec<Vec<usize>>,
    right_count: usize,
}

impl BipartiteGraph {
    /// Creates a graph with `left` left vertices and `right` right vertices
    /// and no edges.
    pub fn new(left: usize, right: usize) -> Self {
        Self {
            adj: vec![Vec::new(); left],
            right_count: right,
        }
    }

    /// Adds an edge from left vertex `l` to right vertex `r`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len(), "left index {l} out of range");
        assert!(r < self.right_count, "right index {r} out of range");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn left_len(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn right_len(&self) -> usize {
        self.right_count
    }

    /// Neighbours of left vertex `l`.
    pub fn neighbours(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_construction() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 0);
        g.add_edge(0, 2);
        g.add_edge(1, 1);
        assert_eq!(g.left_len(), 2);
        assert_eq!(g.right_len(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbours(0), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "right index")]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 5);
    }

    #[test]
    fn assign_slots_finds_assignment_with_rearrangement() {
        // Slot 0 accepts {0, 1}, slot 1 accepts only {0}: a greedy pass
        // seeding slot 0 with 0 must re-arrange to satisfy slot 1.
        let allowed = vec![vec![0, 1], vec![0]];
        let got = assign_slots(0..2, &allowed).expect("feasible");
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn assign_slots_reports_infeasibility() {
        let allowed = vec![vec![0], vec![0]];
        assert_eq!(assign_slots(0..2, &allowed), None);
        assert_eq!(assign_slots(std::iter::empty(), &[vec![]]), None);
    }

    #[test]
    fn assign_slots_empty_slot_set_is_trivially_satisfied() {
        assert_eq!(assign_slots(0..3, &[]), Some(vec![]));
    }

    #[test]
    fn seeded_assignment_is_stable_when_feasible() {
        // Both slots accept both rights; the seeds must survive verbatim
        // even though the unseeded heuristic could permute them.
        let allowed = vec![vec![0, 1], vec![0, 1]];
        let seeds = vec![Some(1), Some(0)];
        let got = assign_slots_seeded(0..2, &allowed, &seeds).expect("feasible");
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn seeded_assignment_moves_only_when_necessary() {
        // The paper's hotel case: slot 0 ("view") is seeded on right 0
        // ("512"), slot 1 ("fifth floor") accepts only right 0 — the seed
        // must yield via an augmenting path.
        let allowed = vec![vec![0, 1], vec![0]];
        let seeds = vec![Some(0), None];
        let got = assign_slots_seeded(0..2, &allowed, &seeds).expect("feasible");
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn stale_seeds_are_ignored() {
        // Seed 7 is not a right; seed 1 is not in slot 1's allowed list;
        // both slots still get assigned.
        let allowed = vec![vec![0, 1], vec![0]];
        let seeds = vec![Some(7), Some(1)];
        let got = assign_slots_seeded(0..2, &allowed, &seeds).expect("feasible");
        assert_eq!(got, vec![1, 0]);
    }

    #[test]
    fn duplicate_seeds_keep_first_and_reroute_second() {
        let allowed = vec![vec![0, 1], vec![0, 1]];
        let seeds = vec![Some(0), Some(0)];
        let got = assign_slots_seeded(0..2, &allowed, &seeds).expect("feasible");
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn seeding_does_not_change_feasibility() {
        // Infeasible stays infeasible no matter the seeds.
        let allowed = vec![vec![0], vec![0]];
        assert_eq!(assign_slots_seeded(0..2, &allowed, &[Some(0), None]), None);
        // Fully seeded feasible case round-trips.
        let allowed: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let seeds: Vec<Option<usize>> = (0..4).map(|i| Some((i + 1) % 4)).collect();
        let got = assign_slots_seeded(0..4, &allowed, &seeds).expect("feasible");
        assert_eq!(got, vec![1, 2, 3, 0]);
    }

    #[test]
    fn assign_slots_assignments_are_distinct() {
        let allowed: Vec<Vec<usize>> = (0..5).map(|_| (0..5).collect()).collect();
        let got = assign_slots(0..5, &allowed).expect("feasible");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "no right vertex used twice: {got:?}");
    }
}
