//! Batch maximum bipartite matching (Hopcroft–Karp).

use crate::BipartiteGraph;

const NIL: usize = usize::MAX;
const INF: u32 = u32::MAX;

/// Result of a maximum-matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingResult {
    /// Size of the maximum matching.
    pub size: usize,
    /// `pair_left[l]` = right partner of left vertex `l`, or `usize::MAX`.
    pub pair_left: Vec<usize>,
    /// `pair_right[r]` = left partner of right vertex `r`, or `usize::MAX`.
    pub pair_right: Vec<usize>,
}

impl MatchingResult {
    /// True if every left vertex is matched (promise-set satisfiability:
    /// each promised slot gets a distinct resource instance).
    pub fn is_left_perfect(&self) -> bool {
        self.size == self.pair_left.len()
    }

    /// Right partner of left vertex `l`, if matched.
    pub fn partner_of_left(&self, l: usize) -> Option<usize> {
        match self.pair_left.get(l) {
            Some(&r) if r != NIL => Some(r),
            _ => None,
        }
    }
}

/// Computes a maximum matching in `O(E sqrt(V))`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> MatchingResult {
    let nl = g.left_len();
    let nr = g.right_len();
    let mut pair_left = vec![NIL; nl];
    let mut pair_right = vec![NIL; nr];
    let mut dist = vec![INF; nl];
    let mut size = 0usize;
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS layering from free left vertices.
        queue.clear();
        let mut found_augmenting_layer = false;
        for l in 0..nl {
            if pair_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        while let Some(l) = queue.pop_front() {
            for &r in g.neighbours(l) {
                let next = pair_right[r];
                if next == NIL {
                    found_augmenting_layer = true;
                } else if dist[next] == INF {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS along layered graph, augmenting vertex-disjoint paths.
        for l in 0..nl {
            if pair_left[l] == NIL && dfs(g, l, &mut pair_left, &mut pair_right, &mut dist) {
                size += 1;
            }
        }
    }

    MatchingResult {
        size,
        pair_left,
        pair_right,
    }
}

fn dfs(
    g: &BipartiteGraph,
    l: usize,
    pair_left: &mut [usize],
    pair_right: &mut [usize],
    dist: &mut [u32],
) -> bool {
    for &r in g.neighbours(l) {
        let next = pair_right[r];
        if next == NIL || (dist[next] == dist[l] + 1 && dfs(g, next, pair_left, pair_right, dist)) {
            pair_left[l] = r;
            pair_right[r] = l;
            return true;
        }
    }
    dist[l] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(left: usize, right: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(left, right);
        for &(l, r) in edges {
            g.add_edge(l, r);
        }
        g
    }

    #[test]
    fn perfect_matching_found() {
        // Hotel example: promise 0 wants "view" rooms {512}, promise 1
        // wants 5th-floor rooms {510, 512}. Room 512 must go to promise 0.
        let g = graph(2, 2, &[(0, 1), (1, 0), (1, 1)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        assert!(m.is_left_perfect());
        assert_eq!(m.partner_of_left(0), Some(1));
        assert_eq!(m.partner_of_left(1), Some(0));
    }

    #[test]
    fn overconstrained_set_is_not_perfect() {
        // Two promises both only satisfiable by the same single room.
        let g = graph(2, 1, &[(0, 0), (1, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 1);
        assert!(!m.is_left_perfect());
    }

    #[test]
    fn empty_graph() {
        let m = hopcroft_karp(&BipartiteGraph::new(0, 0));
        assert_eq!(m.size, 0);
        assert!(m.is_left_perfect());
    }

    #[test]
    fn isolated_left_vertex_unmatched() {
        let g = graph(2, 2, &[(0, 0)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 1);
        assert_eq!(m.partner_of_left(1), None);
    }

    #[test]
    fn complete_bipartite_matches_min_side() {
        let mut g = BipartiteGraph::new(4, 7);
        for l in 0..4 {
            for r in 0..7 {
                g.add_edge(l, r);
            }
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 4);
        // Matched pairs must be mutually consistent and distinct.
        let mut used = std::collections::HashSet::new();
        for l in 0..4 {
            let r = m.partner_of_left(l).unwrap();
            assert!(used.insert(r), "right vertex used twice");
            assert_eq!(m.pair_right[r], l);
        }
    }

    #[test]
    fn long_alternating_chain() {
        // l_i -> {r_i, r_{i+1}} forces augmenting along a chain.
        let n = 50;
        let mut g = BipartiteGraph::new(n, n);
        for i in 0..n {
            g.add_edge(i, i);
            if i + 1 < n {
                g.add_edge(i, i + 1);
            }
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, n);
    }
}
