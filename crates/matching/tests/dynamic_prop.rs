//! Property tests: the dynamic matching stays maximal and internally
//! consistent under arbitrary add/remove sequences.

// `contains_key` guards an assertion here, not an insert.
#![allow(clippy::map_entry)]

use proptest::prelude::*;

use promises_matching::{hopcroft_karp, BipartiteGraph, DynamicMatching, RightRemoval};

#[derive(Debug, Clone)]
enum Op {
    AddLeft(u8, Vec<u8>),
    RemoveLeft(u8),
    RemoveRight(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (any::<u8>(), proptest::collection::vec(0u8..12, 0..6))
            .prop_map(|(l, rs)| Op::AddLeft(l % 16, rs)),
        (0u8..16).prop_map(Op::RemoveLeft),
        (0u8..12).prop_map(Op::RemoveRight),
    ];
    proptest::collection::vec(op, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any operation sequence, the dynamic matching (a) keeps its
    /// internal invariants, (b) matches every accepted-and-not-removed
    /// left vertex, and (c) is exactly as large as the maximum matching of
    /// the surviving graph (maximality is preserved by augmentation).
    #[test]
    fn dynamic_matching_stays_maximal(ops in arb_ops()) {
        let mut m: DynamicMatching<u8, u8> = DynamicMatching::new();
        for r in 0u8..12 {
            m.add_right(r);
        }
        // Shadow state: adjacency of accepted lefts, surviving rights.
        let mut accepted: std::collections::BTreeMap<u8, Vec<u8>> = Default::default();
        let mut rights: std::collections::BTreeSet<u8> = (0u8..12).collect();

        for op in ops {
            match op {
                Op::AddLeft(l, neighbours) => {
                    if accepted.contains_key(&l) {
                        prop_assert!(!m.try_add_left(l, neighbours));
                    } else if m.try_add_left(l, neighbours.clone()) {
                        let usable: Vec<u8> = neighbours
                            .iter()
                            .copied()
                            .filter(|r| rights.contains(r))
                            .collect();
                        accepted.insert(l, usable);
                    }
                }
                Op::RemoveLeft(l) => {
                    m.remove_left(&l);
                    accepted.remove(&l);
                }
                Op::RemoveRight(r) => {
                    let outcome = m.remove_right(&r);
                    if rights.remove(&r) {
                        for adj in accepted.values_mut() {
                            adj.retain(|x| *x != r);
                        }
                        if outcome == RightRemoval::Infeasible {
                            // The holder could not be re-matched: it is no
                            // longer tracked by the structure.
                            let holder: Vec<u8> = accepted
                                .iter()
                                .filter(|(l, _)| m.assignment(l).is_none())
                                .map(|(l, _)| *l)
                                .collect();
                            prop_assert_eq!(holder.len(), 1, "exactly one orphan");
                            accepted.remove(&holder[0]);
                        }
                    } else {
                        prop_assert_eq!(outcome, RightRemoval::Unmatched);
                    }
                }
            }
            prop_assert!(m.check_invariants());
            prop_assert_eq!(m.len(), accepted.len());
        }

        // Cross-check maximality against Hopcroft–Karp on the survivors.
        let lefts: Vec<u8> = accepted.keys().copied().collect();
        let right_index: std::collections::BTreeMap<u8, usize> =
            rights.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
        let mut graph = BipartiteGraph::new(lefts.len(), rights.len());
        for (i, l) in lefts.iter().enumerate() {
            for r in &accepted[l] {
                graph.add_edge(i, right_index[r]);
            }
        }
        let batch = hopcroft_karp(&graph);
        prop_assert!(
            batch.is_left_perfect(),
            "every accepted-and-surviving left must still be matchable"
        );
    }
}
