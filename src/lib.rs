//! `promises` — umbrella crate for the CIDR 2007 *Promises* reproduction.
//!
//! This repository implements Greenfield, Fekete, Jang, Kuo & Nepal,
//! *Isolation Support for Service-based Applications: A Position Paper*
//! (CIDR 2007) as a complete Rust system. The umbrella crate re-exports
//! every sub-crate so applications can depend on one name:
//!
//! * [`core`] — the Promise pattern: predicates, the promise manager,
//!   resource views, atomic promise operations (the paper's contribution);
//! * [`rm`] — the embedded ACID resource manager (paper §8's RM);
//! * [`wire`] — the §6 SOAP-style protocol, codec, bus and gateway;
//! * [`matching`] — bipartite matching for property-view satisfiability;
//! * [`baselines`] — lock-based / optimistic / escrow / soft-lock
//!   comparators;
//! * [`services`] — the paper's example applications (merchant, bank,
//!   hotel, airline, shipping, travel agent);
//! * [`sim`] — the deterministic concurrent workload harness.
//!
//! Start with `examples/quickstart.rs` (the Figure 1 ordering process) or
//! the [`core`] crate documentation.

pub use promises_baselines as baselines;
pub use promises_cluster as cluster;
pub use promises_core as core;
pub use promises_matching as matching;
pub use promises_rm as rm;
pub use promises_services as services;
pub use promises_sim as sim;
pub use promises_wire as wire;
